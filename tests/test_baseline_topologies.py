"""Unit tests: mesh/SIAM, Kite family and SWAP builders."""

from __future__ import annotations

import pytest

from repro.noi.kite import (
    _folded_position,
    build_butter_donut,
    build_double_butterfly,
    build_kite,
)
from repro.noi.mesh import build_cmesh, build_mesh
from repro.noi.properties import compare, summarize
from repro.noi.swap import (
    MAX_LINK_SPAN_PITCHES,
    MAX_PORTS,
    SwapSynthesisConfig,
    build_swap,
    design_time_traffic,
)


class TestMesh:
    def test_link_count_10x10(self):
        # 2D mesh on n x n: 2*n*(n-1) links.
        assert build_mesh(100).num_links == 180

    def test_connected(self, small_mesh):
        assert small_mesh.is_connected()

    def test_ports_bounded_by_four(self, small_mesh):
        assert max(small_mesh.port_histogram()) <= 4

    def test_corners_have_two_ports(self, small_mesh):
        assert small_mesh.port_histogram()[2] == 4

    def test_all_links_single_pitch(self, small_mesh):
        assert small_mesh.link_length_histogram() == {1: small_mesh.num_links}

    def test_cmesh_builds_connected(self):
        topo = build_cmesh(36, concentration=4)
        assert topo.is_connected()
        assert topo.num_links < build_mesh(36).num_links


class TestKite:
    def test_folded_position_is_permutation(self):
        for n in (4, 5, 10):
            positions = sorted(_folded_position(i, n) for i in range(n))
            assert positions == list(range(n))

    def test_all_routers_four_port(self):
        assert build_kite(100).port_histogram() == {4: 100}

    def test_link_count_torus(self):
        # Torus on n x n: 2*n^2 links.
        assert build_kite(100).num_links == 200

    def test_connected(self, small_kite):
        assert small_kite.is_connected()

    def test_links_mostly_two_hop(self):
        hist = build_kite(100).link_length_histogram()
        assert hist[2] > hist.get(1, 0)

    def test_diameter_beats_mesh(self, small_kite, small_mesh):
        assert small_kite.diameter_hops() < small_mesh.diameter_hops()

    def test_butter_donut_adds_links(self, small_kite):
        bd = build_butter_donut(36)
        assert bd.num_links > small_kite.num_links
        assert bd.is_connected()

    def test_double_butterfly_connected(self):
        db = build_double_butterfly(100)
        assert db.is_connected()
        assert db.num_links > build_mesh(100).num_links


class TestSwap:
    def test_connected(self, small_swap):
        assert small_swap.is_connected()

    def test_port_cap_respected(self, small_swap):
        # Backbone gives up to 2; chords may add up to MAX_PORTS + 1
        # transiently never beyond MAX_PORTS + backbone share.
        assert max(small_swap.port_histogram()) <= MAX_PORTS + 1

    def test_link_span_cap(self, small_swap):
        assert max(small_swap.link_length_histogram()) <= MAX_LINK_SPAN_PITCHES

    def test_deterministic_given_seed(self):
        cfg = SwapSynthesisConfig(iterations=60, seed=3)
        a = build_swap(25, config=cfg)
        b = build_swap(25, config=cfg)
        assert {(l.u, l.v) for l in a.links} == {(l.u, l.v) for l in b.links}

    def test_different_seeds_differ(self):
        a = build_swap(25, config=SwapSynthesisConfig(iterations=60, seed=3))
        b = build_swap(25, config=SwapSynthesisConfig(iterations=60, seed=4))
        assert {(l.u, l.v) for l in a.links} != {(l.u, l.v) for l in b.links}

    def test_annealing_improves_traffic_cost(self):
        from repro.noi.swap import _traffic_cost

        traffic = design_time_traffic(25)
        short = build_swap(
            25, config=SwapSynthesisConfig(iterations=0, seed=3)
        )
        long = build_swap(
            25, config=SwapSynthesisConfig(iterations=400, seed=3)
        )
        assert (
            _traffic_cost(long.graph, traffic)
            <= _traffic_cost(short.graph, traffic)
        )

    def test_design_time_traffic_chain_backbone(self):
        traffic = design_time_traffic(10, seed=1)
        chain = [(s, d) for s, d, v in traffic if v == 1.0]
        assert chain == [(i, i + 1) for i in range(9)]


class TestProperties:
    def test_summarize_fields(self, small_mesh):
        s = summarize(small_mesh)
        assert s.num_chiplets == 36
        assert s.num_links == small_mesh.num_links
        assert s.mean_ports == pytest.approx(small_mesh.mean_ports())

    def test_compare_keys(self, small_mesh, small_kite):
        table = compare([summarize(small_mesh), summarize(small_kite)])
        assert set(table) == {"siam", "kite"}
        assert table["kite"]["links"] > table["siam"]["links"]

    def test_single_hop_fraction(self, small_mesh):
        assert summarize(small_mesh).fraction_single_hop_links() == 1.0
