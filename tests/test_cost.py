"""Unit tests: fabrication-cost model (Eqs. (2)-(5))."""

from __future__ import annotations

import math

import pytest

from repro.cost.fabrication import compare_costs, cost_ratio, normalized_cost
from repro.params import CostParams


class TestNormalizedCost:
    def test_reference_like_system_costs_one(self, small_mesh):
        params = CostParams()
        report = normalized_cost(small_mesh, params)
        assert report.noi_area_mm2 == pytest.approx(
            small_mesh.noi_area_mm2()
        )
        assert report.normalized_cost > 0

    def test_cost_grows_with_area(self, small_mesh, small_kite):
        params = CostParams()
        mesh_cost = normalized_cost(small_mesh, params)
        kite_cost = normalized_cost(small_kite, params)
        assert kite_cost.noi_area_mm2 > mesh_cost.noi_area_mm2
        assert kite_cost.normalized_cost > mesh_cost.normalized_cost

    def test_eq5_reduces_to_area_difference(self, small_mesh, small_kite):
        params = CostParams()
        ratio = cost_ratio(small_kite, small_mesh, params)
        expected = math.exp(
            params.defect_density_per_mm2
            * (small_kite.noi_area_mm2() - small_mesh.noi_area_mm2())
        )
        assert ratio == pytest.approx(expected)

    def test_defect_density_amplifies(self, small_mesh, small_kite):
        low = cost_ratio(small_kite, small_mesh,
                         CostParams(defect_density_per_mm2=0.0005))
        high = cost_ratio(small_kite, small_mesh,
                          CostParams(defect_density_per_mm2=0.003))
        assert high > low > 1.0

    def test_ratio_inverse(self, small_mesh, small_kite):
        ab = cost_ratio(small_kite, small_mesh)
        ba = cost_ratio(small_mesh, small_kite)
        assert ab * ba == pytest.approx(1.0)


class TestCompare:
    def test_baseline_is_one(self, small_mesh, small_kite):
        table = compare_costs([small_mesh, small_kite], baseline="siam")
        assert table["siam"]["relative_cost"] == pytest.approx(1.0)
        assert table["kite"]["relative_cost"] > 1.0

    def test_unknown_baseline(self, small_mesh):
        with pytest.raises(KeyError):
            compare_costs([small_mesh], baseline="floret")

    def test_paper_ordering_at_100(self):
        from repro.eval import exp_cost

        table = exp_cost()
        assert (
            table["kite"]["relative_cost"]
            > table["siam"]["relative_cost"]
            > table["swap"]["relative_cost"]
            > 1.0
        )
