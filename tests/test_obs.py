"""Unit tests: the repro.obs tracing/metrics/report subsystem."""

from __future__ import annotations

import json
import math
import multiprocessing as mp
import os

import pytest

from repro.obs import (
    LATENCY_BUCKET_BOUNDS_S,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Stopwatch,
    StreamingStats,
    Tracer,
    default_tracer,
    merge_traces,
    phase_breakdown,
    render_report,
    resolve_tracer,
    slowest_cases,
    summarize_metrics,
    task_eval_summary,
    tracing_enabled,
    worker_case_counts,
    worker_timeline,
)
from repro.obs.report import load_trace_file
from repro.obs.__main__ import main as obs_main


# ---------------------------------------------------------------------------
# clock


class TestStopwatch:
    def test_elapsed_grows(self):
        watch = Stopwatch()
        a = watch.elapsed_s
        b = watch.elapsed_s
        assert 0.0 <= a <= b

    def test_expired(self):
        watch = Stopwatch()
        assert not watch.expired(None)
        assert not watch.expired(1e9)
        assert watch.expired(-1.0)

    def test_restart(self):
        watch = Stopwatch()
        watch.t0 -= 100.0
        assert watch.elapsed_s > 99.0
        watch.restart()
        assert watch.elapsed_s < 10.0


# ---------------------------------------------------------------------------
# metrics


class TestStreamingStats:
    def test_basic(self):
        stats = StreamingStats()
        for v in (1.0, 2.0, 3.0):
            stats.add(v)
        assert stats.count == 3
        assert stats.sum == 6.0
        assert stats.mean == 2.0
        assert stats.min == 1.0
        assert stats.max == 3.0

    def test_empty_mean_is_nan(self):
        assert math.isnan(StreamingStats().mean)

    def test_neumaier_survives_adversarial_stream(self):
        # 1e16 + many tiny addends: naive summation loses them all.
        stats = StreamingStats()
        stats.add(1e16)
        for _ in range(1000):
            stats.add(0.1)
        stats.add(-1e16)
        assert stats.sum == pytest.approx(100.0, abs=1e-9)

    def test_neumaier_large_addend_after_small_sum(self):
        # The Neumaier branch (addend larger than the running sum).
        stats = StreamingStats()
        stats.add(1.0)
        stats.add(1e100)
        stats.add(-1e100)
        assert stats.sum == 1.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.stats.sum == pytest.approx(555.5)

    def test_edge_value_overflows_to_next_bucket(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [0, 1, 0]

    def test_non_finite_dropped(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(float("nan"))
        h.observe(float("inf"))
        assert h.count == 0
        assert h.counts == [0, 0]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascend"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_default_bounds_cover_microseconds_to_minutes(self):
        assert LATENCY_BUCKET_BOUNDS_S[0] == pytest.approx(1e-6)
        assert LATENCY_BUCKET_BOUNDS_S[-1] > 60.0

    def test_snapshot(self):
        h = Histogram("h", bounds=(1.0,))
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["counts"] == [1, 0]
        assert snap["min"] == 0.5


class TestMetricsRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.empty()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert reg.counter("n") is c
        assert c.value == 5
        assert not reg.empty()

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value == 7.0

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # JSON-ready
        reg.reset()
        assert reg.empty()


# ---------------------------------------------------------------------------
# tracer


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("x", a=1) as span:
            span.add(b=2)
        tracer.record_span("x", 0.0, 0.0)
        tracer.event("e")
        tracer.metrics(MetricsRegistry())
        tracer.flush()
        tracer.close()

    def test_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestTracer:
    def test_span_roundtrip(self, tmp_path):
        with Tracer(tmp_path, worker="w0", buffer_records=1) as tracer:
            with tracer.span("phase", case="c1") as span:
                span.add(extra=7)
        records = load_trace_file(tracer.path)
        assert len(records) == 1
        rec = records[0]
        assert rec["kind"] == "span"
        assert rec["name"] == "phase"
        assert rec["case"] == "c1"
        assert rec["extra"] == 7
        assert rec["worker"] == "w0"
        assert rec["dur_s"] >= 0.0
        assert {"pid", "host", "run", "seq", "t"} <= set(rec)

    def test_span_records_error_type(self, tmp_path):
        tracer = Tracer(tmp_path, buffer_records=1)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        tracer.close()
        (rec,) = load_trace_file(tracer.path)
        assert rec["error"] == "RuntimeError"

    def test_buffering_flushes_on_close(self, tmp_path):
        tracer = Tracer(tmp_path, buffer_records=1000)
        tracer.event("e1")
        assert not tracer.path.exists() or not load_trace_file(tracer.path)
        tracer.close()
        assert len(load_trace_file(tracer.path)) == 1

    def test_caller_worker_field_wins(self, tmp_path):
        tracer = Tracer(tmp_path, worker="tracer-id", buffer_records=1)
        tracer.event("claim", worker="shard-3")
        tracer.close()
        (rec,) = load_trace_file(tracer.path)
        assert rec["worker"] == "shard-3"

    def test_seq_is_monotonic(self, tmp_path):
        tracer = Tracer(tmp_path, buffer_records=4)
        for i in range(10):
            tracer.event("e", i=i)
        tracer.close()
        seqs = [r["seq"] for r in load_trace_file(tracer.path)]
        assert seqs == list(range(10))

    def test_metrics_record(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("cases_evaluated").inc(3)
        tracer = Tracer(tmp_path, buffer_records=1)
        tracer.metrics(reg)
        tracer.close()
        (rec,) = load_trace_file(tracer.path)
        assert rec["kind"] == "metrics"
        assert rec["data"]["counters"] == {"cases_evaluated": 3}

    def test_torn_tail_tolerated(self, tmp_path):
        tracer = Tracer(tmp_path, buffer_records=1)
        tracer.event("good")
        tracer.close()
        with open(tracer.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "event", "name": "torn...')
        records = load_trace_file(tracer.path)
        assert [r["name"] for r in records] == ["good"]


class TestDefaultTracer:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not tracing_enabled()
        assert default_tracer() is NULL_TRACER

    def test_env_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        assert tracing_enabled()
        tracer = default_tracer()
        assert tracer.enabled
        assert default_tracer() is tracer  # cached per (pid, dir)
        assert tracer.directory == tmp_path

    def test_resolve(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert resolve_tracer(None) is NULL_TRACER
        passthrough = NullTracer()
        assert resolve_tracer(passthrough) is passthrough
        opened = resolve_tracer(tmp_path, worker="w9")
        assert opened.enabled and opened.worker == "w9"
        opened.close()


def _emit_worker(directory: str, filename: str, worker: str, n: int) -> None:
    tracer = Tracer(directory, worker=worker, filename=filename,
                    buffer_records=7)
    for i in range(n):
        tracer.event("tick", i=i, payload="x" * 200)
    tracer.close()


class TestConcurrentEmission:
    def test_multiprocess_shared_file_no_torn_lines(self, tmp_path):
        # Several processes appending to ONE file: every line must still
        # parse and every record must arrive (the O_APPEND contract).
        ctx = mp.get_context("spawn")
        workers = 4
        per_worker = 50
        procs = [
            ctx.Process(
                target=_emit_worker,
                args=(str(tmp_path), "shared.jsonl", f"w{i}", per_worker),
            )
            for i in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        raw = (tmp_path / "shared.jsonl").read_text(encoding="utf-8")
        lines = [line for line in raw.split("\n") if line]
        records = [json.loads(line) for line in lines]  # no torn lines
        assert len(records) == workers * per_worker
        by_worker = {}
        for rec in records:
            by_worker.setdefault(rec["worker"], []).append(rec["i"])
        assert set(by_worker) == {f"w{i}" for i in range(workers)}
        for seen in by_worker.values():
            assert sorted(seen) == list(range(per_worker))


# ---------------------------------------------------------------------------
# merge + aggregation


def _rec(t, worker, seq, **fields):
    rec = {"kind": "span", "t": t, "worker": worker, "run": worker,
           "seq": seq, "dur_s": 0.0}
    rec.update(fields)
    return rec


class TestMergeTraces:
    def test_order_invariant(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        recs_a = [_rec(2.0, "w0", 0, name="x"), _rec(1.0, "w0", 1, name="y")]
        recs_b = [_rec(1.5, "w1", 0, name="z")]
        a.write_text("\n".join(json.dumps(r) for r in recs_a) + "\n")
        b.write_text("\n".join(json.dumps(r) for r in recs_b) + "\n")
        ab = merge_traces(a, b)
        ba = merge_traces(b, a)
        assert ab == ba
        assert [r["t"] for r in ab] == [1.0, 1.5, 2.0]

    def test_directory_and_iterable_sources(self, tmp_path):
        (tmp_path / "sub").mkdir()
        f = tmp_path / "sub" / "t.jsonl"
        f.write_text(json.dumps(_rec(1.0, "w0", 0, name="a")) + "\n")
        merged = merge_traces(tmp_path, [_rec(0.5, "w1", 0, name="b")])
        assert [r["name"] for r in merged] == ["b", "a"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_traces(tmp_path / "nope")

    def test_same_timestamp_ties_break_on_worker_then_seq(self):
        records = [
            _rec(1.0, "w1", 0, name="c"),
            _rec(1.0, "w0", 1, name="b"),
            _rec(1.0, "w0", 0, name="a"),
        ]
        merged = merge_traces(records)
        assert [r["name"] for r in merged] == ["a", "b", "c"]


class TestAggregations:
    def test_phase_breakdown(self):
        records = [
            _rec(0.0, "w0", 0, name="drain", dur_s=2.0),
            _rec(0.1, "w0", 1, name="case", dur_s=0.5),
            _rec(0.2, "w0", 2, name="case", dur_s=1.5),
        ]
        rows = phase_breakdown(records)
        assert [r["name"] for r in rows] == ["case", "drain"]
        case = rows[0]
        assert case["count"] == 2
        assert case["total_s"] == pytest.approx(2.0)
        assert case["mean_s"] == pytest.approx(1.0)
        assert case["max_s"] == pytest.approx(1.5)

    def test_worker_case_counts(self):
        records = [
            _rec(0.0, "w0", 0, name="drain_case", outcome="evaluated"),
            _rec(0.1, "w0", 1, name="drain_case", outcome="hit"),
            _rec(0.2, "w1", 0, name="drain_case", outcome="evaluated"),
            _rec(0.3, "w1", 1, name="other"),
        ]
        counts = worker_case_counts(records)
        assert counts == {
            "w0": {"total": 2, "evaluated": 1, "hit": 1},
            "w1": {"total": 1, "evaluated": 1},
        }

    def test_slowest_cases(self):
        records = [
            _rec(0.0, "w0", 0, name="drain_case", case="slow", dur_s=3.0),
            _rec(0.1, "w0", 1, name="drain_case", case="fast", dur_s=0.1),
        ]
        slow = slowest_cases(records, top=1)
        assert len(slow) == 1
        assert slow[0]["case"] == "slow"

    def test_worker_timeline(self):
        records = [
            _rec(0.0, "w0", 0, name="case", dur_s=1.0),
            _rec(1.0, "w1", 0, name="case", dur_s=1.0),
        ]
        rows = worker_timeline(records, width=10)
        assert [w for w, _ in rows] == ["w0", "w1"]
        # w0 active early, w1 active late.
        assert rows[0][1][0] == "#"
        assert rows[1][1][-1] == "#"
        assert worker_timeline([]) == []

    def test_summarize_metrics_latest_snapshot_per_process(self):
        # Cumulative snapshots: only the latest per (host, pid) counts.
        def metrics(t, pid, seq, value):
            return {
                "kind": "metrics", "t": t, "host": "h", "pid": pid,
                "run": "r", "seq": seq,
                "data": {"counters": {"cases_evaluated": value}},
            }

        records = [
            metrics(1.0, 1, 0, 5),
            metrics(2.0, 1, 1, 9),   # supersedes the first snapshot
            metrics(1.5, 2, 0, 4),
        ]
        summary = summarize_metrics(records)
        assert summary["counters"]["cases_evaluated"] == 13

    def test_summarize_metrics_histograms_added_bucketwise(self):
        def snap(count, counts, total, mx):
            return {"count": count, "sum": total, "max": mx,
                    "counts": counts}

        records = [
            {"kind": "metrics", "t": 1.0, "host": "h", "pid": 1, "seq": 0,
             "data": {"histograms": {"lat": snap(2, [1, 1], 0.3, 0.2)}}},
            {"kind": "metrics", "t": 1.0, "host": "h", "pid": 2, "seq": 0,
             "data": {"histograms": {"lat": snap(1, [0, 1], 0.5, 0.5)}}},
        ]
        summary = summarize_metrics(records)
        lat = summary["histograms"]["lat"]
        assert lat["count"] == 3
        assert lat["counts"] == [1, 2]
        assert lat["sum"] == pytest.approx(0.8)
        assert lat["max"] == 0.5


# ---------------------------------------------------------------------------
# report rendering + CLI


def _write_sample_trace(directory) -> None:
    tracer = Tracer(directory, worker="w0", buffer_records=1)
    tracer.record_span("drain_case", 1.0, 0.2, case="c1", outcome="evaluated")
    tracer.record_span("drain_case", 1.3, 0.1, case="c2", outcome="hit")
    reg = MetricsRegistry()
    reg.counter("cases_evaluated").inc()
    reg.histogram("case_latency_s").observe(0.2)
    tracer.metrics(reg)
    tracer.close()


class TestRenderReport:
    def test_sections_present(self, tmp_path):
        _write_sample_trace(tmp_path)
        out = render_report(tmp_path)
        assert "phase-time breakdown" in out
        assert "per-worker case counts" in out
        assert "per-worker timeline" in out
        assert "slowest cases" in out
        assert "fleet counters" in out
        assert "latency histograms" in out
        assert "drain_case" in out

    def test_empty_trace(self, tmp_path):
        out = render_report([])
        assert "0 trace records" in out


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        _write_sample_trace(tmp_path)
        assert obs_main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "phase-time breakdown" in out

    def test_report_missing_dir(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope")]) != 0

    def test_merge_command(self, tmp_path, capsys):
        _write_sample_trace(tmp_path / "t1")
        _write_sample_trace(tmp_path / "t2")
        out_path = tmp_path / "merged.jsonl"
        assert obs_main([
            "merge", str(tmp_path / "t1"), str(tmp_path / "t2"),
            "--out", str(out_path),
        ]) == 0
        merged = load_trace_file(out_path)
        assert len(merged) == 6
        assert merged == merge_traces(merged)  # already in merge order

    def test_piped_into_head_exits_cleanly(self, tmp_path):
        # `repro.obs merge big-trace | head` closes the pipe early;
        # the CLI must exit 0 instead of dying on BrokenPipeError.
        import subprocess
        import sys
        from pathlib import Path

        import repro

        path = tmp_path / "trace-h-1-r.jsonl"
        with path.open("w") as fh:
            for i in range(20000):  # overflow the 64 KiB pipe buffer
                fh.write(json.dumps({
                    "kind": "event", "name": "x", "t": float(i),
                    "seq": i, "worker": "w", "run": "r",
                    "pid": 1, "host": "h",
                }) + "\n")
        src = str(Path(repro.__file__).resolve().parents[1])
        script = (
            "set -o pipefail; "
            f"{sys.executable} -m repro.obs merge {tmp_path} "
            "| head -n 1 > /dev/null"
        )
        proc = subprocess.run(
            ["bash", "-c", script],
            env={**os.environ, "PYTHONPATH": src},
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr


# ---------------------------------------------------------------------------
# task-evaluation summary


def _write_task_eval_trace(directory) -> None:
    tracer = Tracer(directory, worker="sched0", buffer_records=1)
    reg = MetricsRegistry()
    reg.counter("sched_taskperf_cache_hits").inc(30)
    reg.counter("sched_taskperf_cache_misses").inc(10)
    reg.counter("task_eval_batched").inc(10)
    reg.counter("task_eval_fallback").inc(2)
    tracer.metrics(reg)
    tracer.close()


class TestTaskEvalSummary:
    def test_rows_from_counters(self):
        metrics = {"counters": {
            "sched_taskperf_cache_hits": 30,
            "sched_taskperf_cache_misses": 10,
            "task_eval_batched": 10,
            "task_eval_fallback": 2,
        }}
        rows = dict(task_eval_summary(metrics))
        assert rows["taskperf cache hits"] == 30
        assert rows["taskperf cache misses"] == 10
        assert rows["taskperf cache hit rate"] == "75.0%"
        assert rows["evaluate_task batched"] == 10
        assert rows["evaluate_task per-layer"] == 2

    def test_empty_without_counters(self):
        assert task_eval_summary({"counters": {}}) == []
        assert task_eval_summary({"counters": {"cases_evaluated": 5}}) == []

    def test_partial_counters(self):
        rows = dict(task_eval_summary(
            {"counters": {"task_eval_batched": 4}}
        ))
        assert rows == {
            "evaluate_task batched": 4,
            "evaluate_task per-layer": 0,
        }

    def test_render_report_section(self, tmp_path):
        _write_task_eval_trace(tmp_path)
        out = render_report(tmp_path)
        assert "task evaluation" in out
        assert "taskperf cache hit rate" in out
        assert "75.0%" in out
        # The raw counters still show in the generic fleet table too.
        assert "sched_taskperf_cache_hits" in out

    def test_cli_renders_section(self, tmp_path, capsys):
        _write_task_eval_trace(tmp_path)
        assert obs_main(["report", str(tmp_path)]) == 0
        assert "task evaluation" in capsys.readouterr().out

    def test_fleet_sums_across_processes(self, tmp_path):
        _write_task_eval_trace(tmp_path / "a")
        records = merge_traces(tmp_path / "a")
        # Fake a second process by rewriting identity fields.
        other = [
            {**r, "pid": 99999, "worker": "sched1"} for r in records
        ]
        metrics = summarize_metrics(merge_traces(records, other))
        rows = dict(task_eval_summary(metrics))
        assert rows["taskperf cache hits"] == 60
        assert rows["taskperf cache hit rate"] == "75.0%"
