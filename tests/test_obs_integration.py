"""Integration tests: tracing threaded through sweep/shard/dse/engines.

The acceptance contract of the observability layer: a traced run's
JSONL records must reconstruct the run's own reports (DrainReport case
counts, phase timings) exactly, and an untraced run must not change
behaviour at all.
"""

from __future__ import annotations

import json

import pytest

from repro.eval.dse import design_space, dse_search
from repro.eval.shard import LeaseBoard, drain_cases, wait_for_cases
from repro.eval.store import ResultStore, case_key, evaluator_fingerprint
from repro.eval.stream import RunningStats, StreamingSweepRunner
from repro.eval.sweeps import SweepCase, SweepRunner, sweep_grid
from repro.net.simulator import Message, simulate
from repro.noi.topology import Chiplet, Link, Topology
from repro.obs import (
    REGISTRY,
    Tracer,
    merge_traces,
    summarize_metrics,
    worker_case_counts,
)


def _eval_ok(case):
    """Deterministic, dependency-free evaluator."""
    return {"value": float(case.num_chiplets * (case.seed + 1))}


def _eval_flaky(case):
    if case.workload == "neighbor":
        raise RuntimeError("broken on purpose")
    return {"value": float(case.seed)}


def _grid(seeds=(0, 1), workloads=("uniform", "transpose")):
    return sweep_grid(
        archs=("siam", "kite"), sizes=(16,),
        workloads=workloads, seeds=seeds,
    )


def _spans(records, name):
    return [r for r in records if r.get("kind") == "span"
            and r.get("name") == name]


# ---------------------------------------------------------------------------
# shard drain <-> trace reconstruction (the acceptance criterion)


class TestDrainTracing:
    def test_trace_reconstructs_drain_report(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace_dir = tmp_path / "traces"
        cases = _grid()
        report = drain_cases(
            store, _eval_ok, cases, worker="w0", trace=trace_dir,
        )
        records = merge_traces(trace_dir)
        counts = worker_case_counts(records)["w0"]
        evaluated = counts.get("evaluated", 0) + counts.get("stolen", 0)
        assert evaluated == report.evaluated == len(cases)
        assert counts.get("hit", 0) == report.store_hits == 0

        # The summary "drain" span carries the same numbers.
        (drain,) = _spans(records, "drain")
        assert drain["worker"] == "w0"
        assert drain["total"] == report.total
        assert drain["evaluated"] == report.evaluated
        assert drain["store_hits"] == report.store_hits
        assert drain["stolen"] == report.stolen

    def test_second_drain_traces_hits(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace_dir = tmp_path / "traces"
        cases = _grid()
        drain_cases(store, _eval_ok, cases, worker="w0")
        report = drain_cases(
            store, _eval_ok, cases, worker="w1", trace=trace_dir,
        )
        assert report.store_hits == len(cases)
        counts = worker_case_counts(merge_traces(trace_dir))["w1"]
        assert counts.get("hit", 0) == len(cases)
        assert counts.get("evaluated", 0) == 0

    def test_failed_cases_traced(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace_dir = tmp_path / "traces"
        cases = _grid(workloads=("uniform", "neighbor"))
        report = drain_cases(
            store, _eval_flaky, cases, worker="w0", trace=trace_dir,
        )
        counts = worker_case_counts(merge_traces(trace_dir))["w0"]
        assert counts.get("failed", 0) == len(report.failures) > 0

    def test_lease_events_and_metrics_snapshot(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace_dir = tmp_path / "traces"
        REGISTRY.reset()
        try:
            drain_cases(store, _eval_ok, _grid(), worker="w0",
                        trace=trace_dir)
            records = merge_traces(trace_dir)
            claims = [r for r in records if r.get("kind") == "event"
                      and r.get("name") == "lease_claims"]
            assert len(claims) == len(_grid())
            assert all(c["worker"] == "w0" for c in claims)
            summary = summarize_metrics(records)
            assert summary["counters"]["lease_claims"] == len(_grid())
            assert summary["counters"]["cases_evaluated"] == len(_grid())
            assert (summary["histograms"]["drain_case_s"]["count"]
                    == len(_grid()))
        finally:
            REGISTRY.reset()

    def test_case_timings_populated(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cases = _grid()
        report = drain_cases(store, _eval_ok, cases, worker="w0")
        assert len(report.case_timings) == len(cases)
        for case_id, start, end in report.case_timings:
            assert end >= start >= 0.0
        slow_id, slow_dur = report.slowest_case
        assert slow_dur >= 0.0
        assert slow_id in {c.case_id for c in cases}
        # Hits-only drains have no evaluator timings.
        rerun = drain_cases(store, _eval_ok, cases, worker="w1")
        assert rerun.case_timings == ()
        assert rerun.slowest_case is None

    def test_case_timings_roundtrip_json(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        report = drain_cases(store, _eval_ok, _grid(), worker="w0")
        data = json.loads(report.to_json())
        assert len(data["case_timings"]) == len(report.case_timings)


class TestDeadlineDiagnostics:
    def test_deadline_names_slowest_completed_case(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cases = _grid(seeds=(0,), workloads=("uniform",))  # 2 cases
        fingerprint = evaluator_fingerprint(_eval_ok)
        # A live peer lease wedges the second case; the first still
        # evaluates, so the timeout can name a slowest completed case.
        peer = LeaseBoard(store, worker="peer", ttl_s=60.0)
        assert peer.acquire(case_key(cases[1], fingerprint))
        with pytest.raises(TimeoutError) as excinfo:
            drain_cases(
                store, _eval_ok, cases, worker="w0",
                lease_ttl_s=60.0, poll_s=0.01, deadline_s=0.3,
            )
        message = str(excinfo.value)
        assert "outstanding" in message
        assert "slowest completed case" in message
        assert cases[0].case_id in message

    def test_deadline_checked_mid_pass(self, tmp_path):
        # A pre-expired deadline must fire before the first case, not
        # after a whole pass evaluated the grid.
        store = ResultStore(tmp_path / "store")
        with pytest.raises(TimeoutError):
            drain_cases(
                store, _eval_ok, _grid(), worker="w0", deadline_s=0.0,
            )
        report = drain_cases(store, _eval_ok, _grid(), worker="w1")
        # Nothing (or at most one in-flight case) landed before the
        # deadline fired.
        assert report.store_hits <= 1

    def test_wait_timeout_reports_progress_age(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cases = _grid()
        with pytest.raises(TimeoutError) as excinfo:
            wait_for_cases(store, _eval_ok, cases,
                           timeout_s=0.05, poll_s=0.01)
        message = str(excinfo.value)
        assert "grid incomplete after" in message
        assert "last progress" in message
        assert cases[0].case_id in message


# ---------------------------------------------------------------------------
# sweep runners


class TestSweepTracing:
    def test_sweep_run_span_and_case_spans(self, tmp_path):
        trace_dir = tmp_path / "traces"
        runner = SweepRunner(_eval_ok, workers=1, trace=trace_dir)
        cases = _grid()
        outcome = runner.run(cases)
        assert outcome.elapsed_s > 0.0
        records = merge_traces(trace_dir)
        (run_span,) = _spans(records, "sweep_run")
        assert run_span["cases"] == len(cases)
        assert run_span["evaluated"] == len(cases)
        assert run_span["store_hits"] == 0

    def test_stream_run_span(self, tmp_path):
        trace_dir = tmp_path / "traces"
        runner = StreamingSweepRunner(_eval_ok, workers=1, trace=trace_dir)
        stats = RunningStats("value")
        outcome = runner.run_stream(_grid(), [stats])
        assert outcome.elapsed_s > 0.0
        assert stats.count == len(_grid())
        (span,) = _spans(merge_traces(trace_dir), "stream_run")
        assert span["total"] == len(_grid())
        assert span["failures"] == 0

    def test_store_replay_traces_replay_spans(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace_dir = tmp_path / "traces"
        cases = _grid()
        StreamingSweepRunner(_eval_ok, workers=1, store=store).run_stream(
            cases, []
        )
        runner = StreamingSweepRunner(
            _eval_ok, workers=1, store=store, trace=trace_dir
        )
        outcome = runner.run_stream(cases, [])
        assert outcome.store_hits == len(cases)
        replays = _spans(merge_traces(trace_dir), "replay_case")
        assert len(replays) == len(cases)

    def test_untraced_run_unchanged(self, monkeypatch):
        # Regression for the elapsed_s contract after the Stopwatch
        # refactor: no REPRO_TRACE, no trace kwarg, everything still
        # populates timing fields and no trace file appears.
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        outcome = SweepRunner(_eval_ok, workers=1).run(_grid())
        assert outcome.elapsed_s > 0.0
        assert all(r.elapsed_s >= 0.0 for r in outcome.results)


class TestDseTracing:
    def test_generation_spans(self, tmp_path):
        trace_dir = tmp_path / "traces"
        space = design_space(
            ("siam", "kite"), (16,), flit_bytes=(16, 32),
            workload="uniform",
        )
        result = dse_search(
            space, _eval_ok,
            objectives=("value",),
            population_size=4, generations=2, seed=0, workers=1,
            trace=trace_dir,
        )
        spans = _spans(merge_traces(trace_dir), "dse_generation")
        # Generation 0 plus each search generation.
        assert len(spans) == result.generations + 1 == 3
        generations = sorted(s["generation"] for s in spans)
        assert generations == [0, 1, 2]
        for span in spans:
            assert span["population"] >= 1
        assert all("fronts" in s for s in spans if s["generation"] > 0)


# ---------------------------------------------------------------------------
# engine phase timings


@pytest.fixture(scope="module")
def line():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(6)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(5)]
    return Topology("line", chiplets, links)


class TestPhaseTimings:
    def test_disabled_by_default(self, line, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        report = simulate(line, [Message(0, 3, payload_bytes=256)])
        assert report.phase_timings is None

    def test_profile_flag_populates_timings(self, line):
        report = simulate(
            line,
            [Message(0, 3, payload_bytes=256),
             Message(1, 4, payload_bytes=256)],
            profile=True,
        )
        timings = report.phase_timings
        assert timings is not None
        assert {"packetize", "classify", "resolve"} <= set(timings)
        assert all(v >= 0.0 for v in timings.values())

    def test_env_enables_profiling(self, line, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        report = simulate(line, [Message(0, 3, payload_bytes=256)])
        assert report.phase_timings is not None

    def test_timings_do_not_affect_equality(self, line):
        # Oracle bit-exactness comparisons must ignore phase timings.
        plain = simulate(line, [Message(0, 3, payload_bytes=256)])
        profiled = simulate(line, [Message(0, 3, payload_bytes=256)],
                            profile=True)
        assert profiled == plain

    def test_engine_dispatch_counters(self, line):
        REGISTRY.reset()
        try:
            simulate(line, [Message(0, 3, payload_bytes=256)],
                     engine="events", profile=True)
            snap = REGISTRY.snapshot()["counters"]
            assert snap.get("sim_engine_events", 0) == 1
            assert snap.get("sim_packets", 0) >= 1
        finally:
            REGISTRY.reset()

    def test_empty_grid_timings(self, line):
        report = simulate(line, [], profile=True)
        assert report.phase_timings is not None
