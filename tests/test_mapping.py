"""Unit tests: contiguous (Floret) and greedy (baseline) mappers."""

from __future__ import annotations

import pytest

from repro.core.mapping import ContiguousMapper, GreedyMapper, TaskPlacement
from repro.pim.allocation import plan_allocation
from repro.pim.chiplet import ChipletSpec

from helpers import make_toy_model


@pytest.fixture(scope="module")
def toy():
    return make_toy_model()


@pytest.fixture(scope="module")
def toy_plan(toy):
    return plan_allocation(toy, ChipletSpec.from_params())


class TestTaskPlacement:
    def test_size_mismatch_rejected(self, toy, toy_plan):
        with pytest.raises(ValueError, match="placement size"):
            TaskPlacement("t", toy.name, toy_plan, (0, 1, 2, 3, 4, 5, 6))

    def test_duplicate_chiplets_rejected(self, toy, toy_plan):
        need = toy_plan.num_chiplets
        if need >= 2:
            ids = tuple([0] * need)
            with pytest.raises(ValueError, match="duplicate"):
                TaskPlacement("t", toy.name, toy_plan, ids)

    def test_max_adjacent_hops(self, small_floret, toy, toy_plan):
        order = small_floret.allocation_order
        ids = tuple(order[: toy_plan.num_chiplets])
        p = TaskPlacement("t", toy.name, toy_plan, ids)
        assert p.max_adjacent_hops(small_floret.topology) >= 1


class TestContiguousMapper:
    def test_empty_system_takes_prefix_run(self, small_floret, toy, toy_plan):
        mapper = ContiguousMapper(
            small_floret.allocation_order, small_floret.topology
        )
        placement = mapper.map_task(
            "t", toy, toy_plan, frozenset(range(36))
        )
        assert placement is not None
        # Best fit on an empty system: a contiguous run somewhere on the
        # curve -> every consecutive pair is adjacent.
        assert placement.max_adjacent_hops(small_floret.topology) == 1

    def test_insufficient_free_returns_none(self, small_floret, toy, toy_plan):
        mapper = ContiguousMapper(small_floret.allocation_order)
        free = frozenset(list(range(toy_plan.num_chiplets - 1)))
        assert mapper.map_task("t", toy, toy_plan, free) is None

    def test_best_fit_prefers_smallest_run(self):
        order = list(range(20))
        mapper = ContiguousMapper(order)
        model = make_toy_model("bf")
        plan = plan_allocation(model, ChipletSpec.from_params())
        need = plan.num_chiplets
        # Two runs: a large one [0..9] and an exact-fit one [15..15+need).
        free = set(range(10)) | set(range(15, 15 + need))
        placement = mapper.map_task("t", model, plan, frozenset(free))
        assert placement is not None
        assert set(placement.chiplet_ids) == set(range(15, 15 + need))

    def test_spill_over_uses_multiple_runs(self):
        order = list(range(12))
        mapper = ContiguousMapper(order)
        model = make_toy_model("sp")
        plan = plan_allocation(model, ChipletSpec.from_params())
        need = plan.num_chiplets
        assert need >= 2
        # Fragment the free set so no single run fits.
        free = set()
        i = 0
        while len(free) < need:
            free.add(i)
            i += 2
        placement = mapper.map_task("t", model, plan, frozenset(free))
        assert placement is not None
        assert set(placement.chiplet_ids) <= free

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            ContiguousMapper([0, 1, 1])

    def test_zero_chiplet_plan(self, small_floret):
        from repro.workloads.dnn import DNNModel
        from repro.workloads.layers import LayerGraphBuilder

        b = LayerGraphBuilder("empty", (1, 2, 2))
        b.add_pool(b.input_index, kernel=2)
        model = DNNModel("empty", "toy", b.build())
        plan = plan_allocation(model, ChipletSpec.from_params())
        mapper = ContiguousMapper(small_floret.allocation_order)
        placement = mapper.map_task("t", model, plan, frozenset(range(36)))
        assert placement is not None
        assert placement.chiplet_ids == ()


class TestGreedyMapper:
    def test_empty_system_near_adjacent(self, small_mesh, toy, toy_plan):
        mapper = GreedyMapper(small_mesh)
        placement = mapper.map_task("t", toy, toy_plan, frozenset(range(36)))
        assert placement is not None
        assert placement.max_adjacent_hops(small_mesh) <= 2

    def test_insufficient_free(self, small_mesh, toy, toy_plan):
        mapper = GreedyMapper(small_mesh)
        free = frozenset(range(toy_plan.num_chiplets - 1))
        assert mapper.map_task("t", toy, toy_plan, free) is None

    def test_strict_hop_budget_rejects_fragmented(self, small_mesh, toy,
                                                  toy_plan):
        mapper = GreedyMapper(small_mesh, max_hops=1)
        # Free chiplets scattered on a diagonal: pairwise hops >= 2.
        free = frozenset(
            y * 6 + x for x, y in
            [(0, 0), (2, 2), (4, 4), (0, 4), (4, 0), (2, 0), (0, 2), (5, 5)]
        )
        if len(free) >= toy_plan.num_chiplets:
            assert mapper.map_task("t", toy, toy_plan, free) is None

    def test_unconstrained_accepts_fragmented(self, small_mesh, toy,
                                              toy_plan):
        mapper = GreedyMapper(small_mesh)
        free = frozenset(
            y * 6 + x for x, y in
            [(0, 0), (2, 2), (4, 4), (0, 4), (4, 0), (2, 0), (0, 2), (5, 5)]
        )
        if len(free) >= toy_plan.num_chiplets:
            placement = mapper.map_task("t", toy, toy_plan, free)
            assert placement is not None

    def test_uses_only_free_chiplets(self, small_mesh, toy, toy_plan):
        mapper = GreedyMapper(small_mesh)
        free = frozenset(range(10, 36))
        placement = mapper.map_task("t", toy, toy_plan, free)
        assert placement is not None
        assert set(placement.chiplet_ids) <= set(free)
