"""Unit tests: the Topology substrate."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.noi.topology import (
    Chiplet,
    Link,
    Topology,
    grid_chiplets,
    grid_dimensions,
)


def line_topology(n: int = 4) -> Topology:
    chiplets = [Chiplet(i, x=i, y=0) for i in range(n)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(n - 1)]
    return Topology("line", chiplets, links)


class TestConstruction:
    def test_indices_must_be_dense(self):
        with pytest.raises(ValueError, match="dense"):
            Topology("bad", [Chiplet(1, 0, 0)], [])

    def test_position_clash_rejected(self):
        with pytest.raises(ValueError, match="multiple chiplets"):
            Topology(
                "bad",
                [Chiplet(0, 0, 0), Chiplet(1, 0, 0)],
                [],
            )

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="self-link"):
            Link(1, 1, length_mm=1.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="negative length"):
            Link(0, 1, length_mm=-1.0)

    def test_duplicate_link_rejected(self):
        chiplets = [Chiplet(0, 0, 0), Chiplet(1, 1, 0)]
        with pytest.raises(ValueError, match="duplicate link"):
            Topology("bad", chiplets,
                     [Link(0, 1, 1.0), Link(1, 0, 1.0)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown chiplet"):
            Topology("bad", [Chiplet(0, 0, 0)], [Link(0, 5, 1.0)])


class TestQueries:
    def test_hops_line(self):
        topo = line_topology(5)
        assert topo.hops(0, 4) == 4
        assert topo.hops(2, 2) == 0

    def test_hops_symmetric(self):
        topo = line_topology(5)
        assert topo.hops(1, 4) == topo.hops(4, 1)

    def test_route_endpoints(self):
        topo = line_topology(4)
        route = topo.route(0, 3)
        assert route[0] == 0 and route[-1] == 3
        assert len(route) == 4

    def test_route_self(self):
        assert line_topology(3).route(1, 1) == (1,)

    def test_disconnected_raises(self):
        chiplets = [Chiplet(0, 0, 0), Chiplet(1, 5, 5)]
        topo = Topology("disc", chiplets, [])
        with pytest.raises(nx.NetworkXNoPath):
            topo.hops(0, 1)
        assert not topo.is_connected()

    def test_path_length_mm(self):
        topo = line_topology(4)
        assert topo.path_length_mm(0, 3) == pytest.approx(9.0)

    def test_diameter(self):
        assert line_topology(6).diameter_hops() == 5

    def test_average_hops_line(self):
        # Line of 3: pairs (0,1)=1 (0,2)=2 (1,2)=1 -> mean 4/3.
        assert line_topology(3).average_hops() == pytest.approx(4 / 3)

    def test_route_prefers_short_wires(self):
        # Two parallel 2-hop routes; one has shorter wires.
        chiplets = [Chiplet(0, 0, 0), Chiplet(1, 1, 0),
                    Chiplet(2, 1, 1), Chiplet(3, 2, 0)]
        links = [
            Link(0, 1, length_mm=1.0), Link(1, 3, length_mm=1.0),
            Link(0, 2, length_mm=5.0), Link(2, 3, length_mm=5.0),
        ]
        topo = Topology("par", chiplets, links)
        assert topo.route(0, 3) == (0, 1, 3)


class TestStructureMetrics:
    def test_port_histogram_line(self):
        topo = line_topology(4)
        assert topo.port_histogram() == {1: 2, 2: 2}

    def test_mean_ports(self):
        topo = line_topology(4)
        assert topo.mean_ports() == pytest.approx(2 * 3 / 4)

    def test_link_length_histogram(self):
        topo = line_topology(4)
        assert topo.link_length_histogram() == {1: 3}

    def test_total_link_length(self):
        assert line_topology(4).total_link_length_mm() == pytest.approx(9.0)

    def test_bisection_line(self):
        assert line_topology(4).bisection_links() == 1

    def test_noi_area_positive(self):
        assert line_topology(4).noi_area_mm2() > 0

    def test_multicast_flag_default_false(self):
        assert not line_topology(3).multicast_capable


class TestGridHelpers:
    @pytest.mark.parametrize(
        "n,expected",
        [(100, (10, 10)), (36, (6, 6)), (60, (10, 6)), (1, (1, 1))],
    )
    def test_grid_dimensions(self, n, expected):
        assert grid_dimensions(n) == expected

    def test_grid_dimensions_prime(self):
        cols, rows = grid_dimensions(17)
        assert cols * rows >= 17

    def test_grid_dimensions_invalid(self):
        with pytest.raises(ValueError):
            grid_dimensions(0)

    def test_grid_chiplets_positions_unique(self):
        chiplets = grid_chiplets(36)
        positions = {(c.x, c.y) for c in chiplets}
        assert len(positions) == 36

    def test_manhattan(self):
        a = Chiplet(0, 0, 0, 0)
        b = Chiplet(1, 2, 3, 1)
        assert a.manhattan_to(b) == 6
