"""Importable test helpers (kept out of conftest.py on purpose).

Importing from ``conftest`` resolves whichever conftest.py happens to
be first on ``sys.path`` -- historically this suite imported
``benchmarks/conftest.py`` by accident and failed to collect.  Shared
constructors therefore live here, where the module name is unambiguous
(``tests`` is on pytest's ``pythonpath``, see pyproject.toml).
"""

from __future__ import annotations

from repro.workloads.dnn import DNNModel
from repro.workloads.layers import LayerGraphBuilder


def make_toy_model(name: str = "toy", blocks: int = 2) -> DNNModel:
    """A small residual CNN sized to span ~5 chiplets (2M weights each)."""
    b = LayerGraphBuilder(name, (3, 16, 16))
    x = b.add_conv(b.input_index, 64, kernel=3, padding=1, name="stem")
    for i in range(blocks):
        y = b.add_conv(x, 64, kernel=3, padding=1, name=f"b{i}/c1")
        y = b.add_conv(y, 64, kernel=3, padding=1, name=f"b{i}/c2")
        x = b.add_add([x, y], name=f"b{i}/add")
    x = b.add_flatten(x, name="flatten")
    x = b.add_fc(x, 512, name="fc1")
    x = b.add_fc(x, 10, name="fc2")
    return DNNModel(name, "toy", b.build())
