"""Unit tests: thermal solver physics and power extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc3d.grid3d import Grid3D, build_floret_3d
from repro.params import ThermalParams
from repro.pim.allocation import plan_allocation
from repro.pim.chiplet import spec_for_budget
from repro.thermal.hotspot import analyze_tier, render_tier_ascii
from repro.thermal.model import ThermalModel
from repro.thermal.power import streaming_power, weight_fractions_per_pe
from repro.workloads.zoo import build_model


@pytest.fixture(scope="module")
def grid():
    return Grid3D(cols=3, rows=3, tiers=3)


@pytest.fixture(scope="module")
def model(grid):
    return ThermalModel(grid)


class TestSolverPhysics:
    def test_zero_power_is_ambient(self, grid, model):
        report = model.solve(np.zeros(grid.num_pes))
        assert np.allclose(report.temperatures_k, 300.0)

    def test_power_raises_temperature(self, grid, model):
        p = np.zeros(grid.num_pes)
        p[0] = 1.0
        report = model.solve(p)
        assert report.peak_k > 300.0
        assert (report.temperatures_k >= 300.0 - 1e-9).all()

    def test_linearity(self, grid, model):
        p = np.zeros(grid.num_pes)
        p[4] = 1.0
        t1 = model.solve(p).temperatures_k - 300.0
        t2 = model.solve(2 * p).temperatures_k - 300.0
        assert np.allclose(t2, 2 * t1)

    def test_superposition(self, grid, model):
        pa = np.zeros(grid.num_pes); pa[0] = 0.7
        pb = np.zeros(grid.num_pes); pb[10] = 0.4
        ta = model.solve(pa).temperatures_k - 300.0
        tb = model.solve(pb).temperatures_k - 300.0
        tab = model.solve(pa + pb).temperatures_k - 300.0
        assert np.allclose(tab, ta + tb)

    def test_bottom_hotter_than_top_for_same_power(self, grid, model):
        bottom = np.zeros(grid.num_pes)
        bottom[grid.index(1, 1, 0)] = 1.0
        top = np.zeros(grid.num_pes)
        top[grid.index(1, 1, grid.tiers - 1)] = 1.0
        assert model.solve(bottom).peak_k > model.solve(top).peak_k

    def test_heat_source_is_peak(self, grid, model):
        p = np.zeros(grid.num_pes)
        hot = grid.index(0, 0, 0)
        p[hot] = 1.0
        report = model.solve(p)
        assert int(np.argmax(report.temperatures_k)) == hot

    def test_energy_balance(self, grid):
        """Total heat into the sink equals total power injected."""
        params = ThermalParams()
        model = ThermalModel(grid, params)
        p = np.zeros(grid.num_pes)
        p[grid.index(1, 1, 0)] = 2.0
        report = model.solve(p)
        top = report.tier_map(grid, grid.tiers - 1)
        sink_flow = params.sink_conductance_w_per_k * float(
            (top - params.ambient_k).sum()
        )
        assert sink_flow == pytest.approx(2.0, rel=1e-6)

    def test_bad_power_shape(self, grid, model):
        with pytest.raises(ValueError, match="shape"):
            model.solve(np.zeros(5))

    def test_negative_power_rejected(self, grid, model):
        p = np.zeros(grid.num_pes)
        p[0] = -1.0
        with pytest.raises(ValueError, match="negative"):
            model.solve(p)


class TestHotspots:
    def test_tier_map_shape(self, grid, model):
        p = np.zeros(grid.num_pes); p[0] = 1.0
        report = model.solve(p)
        assert report.tier_map(grid, 0).shape == (3, 3)

    def test_analyze_tier(self, grid, model):
        p = np.zeros(grid.num_pes); p[grid.index(1, 1, 0)] = 5.0
        report = model.solve(p)
        hs = analyze_tier(report, grid, tier=0, label="x",
                          threshold_k=310.0)
        assert hs.tier_peak_k >= hs.tier_mean_k
        assert hs.hotspot_pes >= 1

    def test_render_ascii_shape(self, grid, model):
        p = np.zeros(grid.num_pes); p[0] = 1.0
        report = model.solve(p)
        art = render_tier_ascii(report.tier_map(grid, 0))
        lines = art.split("\n")
        assert len(lines) == 3
        assert all(len(line) == 3 for line in lines)

    def test_render_shared_scale_monotone(self):
        hot = np.array([[310.0, 305.0], [301.0, 300.0]])
        art = render_tier_ascii(hot, low_k=300.0, high_k=310.0)
        shades = " .:-=+*#%@"
        assert shades.index(art[0]) >= shades.index(art[-1])


class TestStreamingPower:
    def test_power_profile(self):
        design = build_floret_3d(64, 4)
        workload = build_model("resnet18", "cifar10")
        spec = spec_for_budget(workload.total_params, 64)
        plan = plan_allocation(workload, spec)
        ids = list(design.allocation_order[: plan.num_chiplets])
        profile = streaming_power(design.topology, workload, plan, ids,
                                  spec=spec)
        assert profile.total_w > 0
        assert profile.power_w.shape == (64,)
        # Unused PEs carry only static power.
        used = set(ids)
        for pe in range(64):
            if pe not in used:
                assert profile.power_w[pe] == pytest.approx(
                    spec.static_power_w
                )

    def test_early_layers_hotter(self):
        design = build_floret_3d(64, 4)
        workload = build_model("resnet18", "cifar10")
        spec = spec_for_budget(workload.total_params, 64)
        plan = plan_allocation(workload, spec)
        ids = list(design.allocation_order[: plan.num_chiplets])
        profile = streaming_power(design.topology, workload, plan, ids,
                                  spec=spec)
        used_power = profile.power_w[ids]
        # The maximum-power PE sits in the first half of the chain
        # (activation-heavy early layers).
        assert int(np.argmax(used_power)) < len(ids) / 2

    def test_weight_fractions_sum_to_one(self):
        workload = build_model("resnet18", "cifar10")
        spec = spec_for_budget(workload.total_params, 64)
        plan = plan_allocation(workload, spec)
        ids = list(range(plan.num_chiplets))
        fractions = weight_fractions_per_pe(64, plan, ids)
        assert sum(fractions) == pytest.approx(1.0)
