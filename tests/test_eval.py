"""Tests for the evaluation harness (light drivers only).

The heavyweight drivers (Figs. 3-7) run in `benchmarks/`; here we check
the cheap drivers' structure and the harness caching, plus the extension
experiments on reduced configurations.
"""

from __future__ import annotations

import pytest

from repro.eval import (
    exp_cost,
    exp_eq1_headtail,
    exp_fig2a,
    exp_fig2b,
    exp_sec2_skip_traffic,
    exp_sec4_transformer,
    exp_table1,
    exp_table2,
    floret_design,
    mapper_for,
    topology_for,
)
from repro.eval.extensions import exp_hetero_transformer, exp_redundancy


class TestBuilders:
    def test_topology_cached(self):
        assert topology_for("siam") is topology_for("siam")

    def test_floret_design_cached(self):
        assert floret_design() is floret_design()

    def test_unknown_arch(self):
        with pytest.raises(ValueError):
            topology_for("hypercube")

    def test_mapper_kinds(self):
        from repro.core.mapping import ContiguousMapper, GreedyMapper

        assert isinstance(mapper_for("floret"), ContiguousMapper)
        assert isinstance(mapper_for("siam"), GreedyMapper)


class TestLightDrivers:
    def test_table1(self):
        assert len(exp_table1()) == 13

    def test_table2(self):
        rows = exp_table2()
        assert [r.mix_name for r in rows] == [
            "WL1", "WL2", "WL3", "WL4", "WL5"
        ]

    def test_fig2a_has_all_archs(self):
        hists = exp_fig2a()
        assert set(hists) == {"floret", "kite", "siam", "swap"}

    def test_fig2b_link_ordering(self):
        summaries = exp_fig2b()
        assert (
            summaries["kite"].num_links
            > summaries["siam"].num_links
            > summaries["swap"].num_links
            > summaries["floret"].num_links
        )

    def test_cost_floret_cheapest(self):
        table = exp_cost()
        assert all(
            row["relative_cost"] >= 1.0 for row in table.values()
        )

    def test_eq1_rows(self):
        rows = exp_eq1_headtail(petal_counts=(2, 4))
        assert len(rows) == 2
        assert all(r.improvement >= 1.0 for r in rows)

    def test_skip_traffic(self):
        rows = exp_sec2_skip_traffic()
        assert rows[0].model_name == "resnet34/imagenet"

    def test_sec4_rows(self):
        rows = exp_sec4_transformer()
        names = [r.config_name for r in rows]
        assert names == ["bert-tiny", "bert-base"]


class TestExtensions:
    def test_redundancy_small(self):
        rows = exp_redundancy(36)
        by_label = {r.label: r for r in rows}
        assert by_label["floret-1sfc"].survival_fraction == 0.0
        assert (
            by_label["floret-6sfc"].survival_fraction
            > by_label["floret-1sfc"].survival_fraction
        )

    def test_hetero_rows(self):
        rows = exp_hetero_transformer()
        assert all(r.speedup > 1.0 for r in rows)
