"""Load-sweep experiment layer: spec parsing, traffic, evaluator, store.

Satellite coverage for the injection-rate experiment family: workload
strings round-trip through :func:`parse_load_workload`, the Bernoulli
traffic generator is deterministic and pattern-correct, the
``evaluate_load_sweep_case`` evaluator reports sound steady-state
metrics, and the whole family rides ``SweepRunner`` + ``ResultStore``
(cached, resumable) like every other figure bench.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import ResultStore, SweepRunner, sweep_grid
from repro.eval.experiments import (
    LOAD_SWEEP_MEASURE_CYCLES,
    LOAD_SWEEP_WARMUP_CYCLES,
    LoadSweepSpec,
    SaturationSpec,
    evaluate_load_sweep_case,
    evaluate_saturation_case,
    evaluate_sim_crosscheck_case,
    load_sweep_traffic,
    parse_load_workload,
    parse_saturation_workload,
    saturation_knee,
)
from repro.eval.sweeps import SweepCase


class TestParseLoadWorkload:
    def test_defaults(self):
        spec = parse_load_workload("uniform@0.05")
        assert spec == LoadSweepSpec(
            pattern="uniform",
            injection_rate=0.05,
            warmup_cycles=LOAD_SWEEP_WARMUP_CYCLES,
            measure_cycles=LOAD_SWEEP_MEASURE_CYCLES,
        )

    def test_window_suffix(self):
        spec = parse_load_workload("hotspot@0.1:w512+2048")
        assert spec.warmup_cycles == 512
        assert spec.measure_cycles == 2048
        assert spec.window_cycles == 2560

    def test_roundtrip_through_workload_property(self):
        for text in ("uniform@0.05", "transpose@0.125:w64+256"):
            spec = parse_load_workload(text)
            assert parse_load_workload(spec.workload) == spec

    @pytest.mark.parametrize("bad", [
        "uniform", "uniform@", "@0.05", "uniform@x",
        "uniform@0", "uniform@1.5", "uniform@-0.1",
        "uniform@0.05:w64", "uniform@0.05:64+128",
        "uniform@0.05:wx+128", "uniform@0.05:w64+0",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_load_workload(bad)

    def test_missing_rate_message_names_format(self):
        with pytest.raises(ValueError,
                           match=r"not 'pattern@rate"):
            parse_load_workload("uniform@")
        with pytest.raises(ValueError,
                           match=r"not 'pattern@rate"):
            parse_load_workload("uniform")

    def test_unparseable_rate_names_the_rate(self):
        with pytest.raises(ValueError,
                           match=r"bad injection rate '2x'"):
            parse_load_workload("uniform@2x")

    def test_zero_measure_window_message(self):
        with pytest.raises(ValueError,
                           match="measurement window must be positive"):
            parse_load_workload("uniform@0.05:w64+0")

    def test_negative_warmup_rejected_with_window_format(self):
        # isdigit rejects the sign, so a negative warm-up fails the
        # window format check with the expected-format message.
        with pytest.raises(ValueError,
                           match=r"bad window 'w-5\+128'"):
            parse_load_workload("uniform@0.05:w-5+128")

    def test_negative_measure_rejected(self):
        with pytest.raises(ValueError, match="bad window"):
            parse_load_workload("uniform@0.05:w64+-10")


class TestLoadSweepTraffic:
    SPEC = LoadSweepSpec("uniform", 0.1, warmup_cycles=32,
                         measure_cycles=96)

    def test_deterministic(self):
        a = load_sweep_traffic(self.SPEC, 16, seed=3)
        b = load_sweep_traffic(self.SPEC, 16, seed=3)
        assert np.array_equal(a, b)
        c = load_sweep_traffic(self.SPEC, 16, seed=4)
        assert not np.array_equal(a, c)

    def test_table_shape_and_bounds(self):
        table = load_sweep_traffic(self.SPEC, 16, seed=0)
        assert table.shape[1] == 5
        src, dst, payload, inject, mids = table.T
        assert src.min() >= 0 and src.max() < 16
        assert dst.min() >= 0 and dst.max() < 16
        assert np.all(payload == 64)
        assert inject.min() >= 0
        assert inject.max() < self.SPEC.window_cycles
        assert np.array_equal(mids, np.arange(table.shape[0]))

    def test_injection_rate_is_approximately_offered(self):
        spec = LoadSweepSpec("uniform", 0.1, warmup_cycles=256,
                             measure_cycles=1024)
        table = load_sweep_traffic(spec, 32, seed=0)
        offered = table.shape[0] / (32 * spec.window_cycles)
        assert offered == pytest.approx(0.1, rel=0.1)

    def test_patterns(self):
        n = 16
        for pattern, check in (
            ("neighbor", lambda s, d: np.all(d == (s + 1) % n)),
            ("transpose", lambda s, d: np.all(d == n - 1 - s)),
        ):
            spec = LoadSweepSpec(pattern, 0.1, 16, 48)
            table = load_sweep_traffic(spec, n, seed=1)
            assert check(table[:, 0], table[:, 1]), pattern
        hot = load_sweep_traffic(LoadSweepSpec("hotspot", 0.2, 16, 48),
                                 n, seed=1)
        counts = np.bincount(hot[:, 1], minlength=n)
        assert counts.max() >= 0.3 * hot.shape[0]

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            load_sweep_traffic(LoadSweepSpec("mystery", 0.1), 16, 0)


class TestEvaluateLoadSweepCase:
    CASE = SweepCase(arch="siam", num_chiplets=16,
                     workload="uniform@0.08:w64+192", seed=2)

    def test_metrics_are_sound(self):
        m = evaluate_load_sweep_case(self.CASE)
        assert m["injected_packets"] > 0
        assert 0 < m["steady_packets"] <= m["injected_packets"]
        assert m["offered_rate"] == pytest.approx(0.08, rel=0.25)
        assert m["steady_mean_latency"] > 0
        assert m["steady_max_latency"] >= m["steady_mean_latency"]
        assert m["makespan_cycles"] >= 256  # window at minimum
        assert 0 <= m["contended_fraction"] <= 1
        # Below saturation, accepted throughput tracks the offered rate.
        assert m["steady_throughput"] == pytest.approx(
            m["offered_rate"], rel=0.35
        )

    def test_latency_rises_with_load(self):
        low = evaluate_load_sweep_case(
            SweepCase(arch="siam", num_chiplets=16,
                      workload="uniform@0.02:w64+192", seed=2)
        )
        high = evaluate_load_sweep_case(
            SweepCase(arch="siam", num_chiplets=16,
                      workload="uniform@0.3:w64+192", seed=2)
        )
        assert high["steady_mean_latency"] > low["steady_mean_latency"]
        assert high["drain_cycles"] > low["drain_cycles"]

    def test_rides_sweep_runner_with_store(self, tmp_path):
        cases = sweep_grid(
            archs=("siam", "kite"), sizes=(16,),
            workloads=("uniform@0.05:w32+96", "uniform@0.1:w32+96"),
            seeds=(0,),
        )
        cold = SweepRunner(evaluate_load_sweep_case, workers=1,
                           store=ResultStore(tmp_path)).run(cases)
        assert not cold.failures
        assert cold.store_hits == 0
        warm = SweepRunner(evaluate_load_sweep_case, workers=1,
                           store=ResultStore(tmp_path)).run(cases)
        assert not warm.failures
        assert warm.store_hits == len(cases)
        assert warm.evaluated == 0
        for a, b in zip(cold.results, warm.results):
            assert a.metrics == b.metrics
        # Injection rate lives in the workload axis, so distinct rates
        # hash to distinct store keys.
        assert len(set(
            SweepRunner(evaluate_load_sweep_case).case_keys(cases)
        )) == len(cases)


class TestParseSaturationWorkload:
    def test_roundtrip(self):
        spec = parse_saturation_workload("uniform@0.02-0.3/8:w64+256")
        assert spec == SaturationSpec("uniform", 0.02, 0.3, 8, 64, 256)
        assert parse_saturation_workload(spec.workload) == spec

    def test_defaults_window(self):
        spec = parse_saturation_workload("hotspot@0.05-0.5/4")
        assert spec.warmup_cycles == LOAD_SWEEP_WARMUP_CYCLES
        assert spec.measure_cycles == LOAD_SWEEP_MEASURE_CYCLES

    def test_rates_grid(self):
        spec = parse_saturation_workload("uniform@0.1-0.3/3")
        assert np.allclose(spec.rates(), [0.1, 0.2, 0.3])
        assert spec.load_spec(0.2).injection_rate == 0.2
        assert spec.load_spec(0.2).pattern == "uniform"

    @pytest.mark.parametrize("bad", [
        "uniform", "uniform@0.1/4", "uniform@0.1-0.3",
        "uniform@-0.3/4", "uniform@0.3-0.1/4", "uniform@0-0.3/4",
        "uniform@0.1-1.5/4", "uniform@0.1-0.3/1",
        "uniform@0.1-0.3/x", "uniform@x-0.3/4",
        "uniform@0.1-0.3/4:w64+0",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_saturation_workload(bad)


class TestSaturationKnee:
    def test_knee_at_first_shortfall(self):
        offered = np.array([0.1, 0.2, 0.3, 0.4])
        accepted = np.array([0.1, 0.19, 0.22, 0.22])
        knee, sat = saturation_knee(offered, accepted, tolerance=0.1)
        assert knee == 0.3
        assert sat == 0.22

    def test_never_saturated_reports_last_rate(self):
        offered = np.array([0.1, 0.2])
        accepted = np.array([0.099, 0.198])
        knee, sat = saturation_knee(offered, accepted)
        assert knee == 0.2
        assert sat == 0.198

    def test_rejects_mismatched_or_empty(self):
        with pytest.raises(ValueError):
            saturation_knee(np.array([0.1]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            saturation_knee(np.array([]), np.array([]))


class TestEvaluateSaturationCase:
    FC = (("fc_buffer_flits", 24), ("fc_credit_rtt", 2),
          ("fc_source_queue", 4))
    CASE = SweepCase(arch="siam", num_chiplets=16,
                     workload="uniform@0.05-0.35/4:w32+128",
                     noi_overrides=FC)

    def test_metrics_and_curves_sound(self):
        m = evaluate_saturation_case(self.CASE)
        offered = m["offered_rates"]
        accepted = m["accepted_throughput"]
        assert offered.shape == accepted.shape == (4,)
        # Below the knee accepted tracks offered; everywhere bounded.
        assert accepted[0] == pytest.approx(offered[0], rel=0.25)
        assert accepted.max() <= 1.05 * offered.max()
        assert m["saturation_throughput"] == pytest.approx(
            accepted.max()
        )
        assert 0 < m["knee_rate"] <= m["peak_offered"]
        assert 0 < m["peak_link_utilization"] <= 1.0
        assert np.all(np.diff(m["steady_mean_latency"]) >= 0) or (
            m["steady_mean_latency"].max()
            >= m["steady_mean_latency"][0]
        )

    def test_closed_loop_bounds_queues_where_open_loop_grows(self):
        # The behaviour the subsystem exists for: under hotspot
        # overload the open loop piles unbounded waiting queues onto
        # the hot links, while finite buffers + source queues bound the
        # in-flight population -- at the cost of visible credit stalls.
        from repro.net.flowcontrol import FlowControlParams
        from repro.net.simulator import simulate_packets
        from repro.eval.sweeps import case_topology

        case = SweepCase(arch="siam", num_chiplets=16,
                         workload="hotspot@0.35:w32+128", seed=1)
        topo = case_topology(case)
        spec = parse_load_workload(case.workload)
        table = load_sweep_traffic(spec, 16, case.seed)
        open_loop = simulate_packets(topo, table, flow_control=None,
                                     telemetry=True)
        closed = simulate_packets(
            topo, table, telemetry=True,
            flow_control=FlowControlParams(buffer_flits=6,
                                           source_queue=2,
                                           credit_rtt=2),
        )
        assert (closed.telemetry.peak_queue_flits.max()
                < 0.25 * open_loop.telemetry.peak_queue_flits.max())
        assert closed.telemetry.credit_stall_cycles.sum() > 0

    def test_rides_sweep_runner_with_store(self, tmp_path):
        cases = [self.CASE]
        cold = SweepRunner(evaluate_saturation_case, workers=1,
                           store=ResultStore(tmp_path)).run(cases)
        assert not cold.failures and cold.store_hits == 0
        warm = SweepRunner(evaluate_saturation_case, workers=1,
                           store=ResultStore(tmp_path)).run(cases)
        assert warm.store_hits == 1 and warm.evaluated == 0
        assert cold.results[0].metrics == warm.results[0].metrics
        for name, arr in cold.results[0].arrays.items():
            assert np.array_equal(arr, warm.results[0].arrays[name]), name
        # Distinct fc overrides hash to distinct keys.
        other = SweepCase(arch="siam", num_chiplets=16,
                          workload=self.CASE.workload,
                          noi_overrides=(("fc_buffer_flits", 8),))
        keys = SweepRunner(evaluate_saturation_case).case_keys(
            [self.CASE, other]
        )
        assert len(set(keys)) == 2


class TestSimCrosscheckCase:
    def test_analytic_is_sound_lower_bound(self):
        m = evaluate_sim_crosscheck_case(
            SweepCase(arch="siam", num_chiplets=16, workload="chain")
        )
        assert m["packets_delivered"] > 0
        assert m["sim_total_cycles"] >= 0.9 * m["analytic_total_cycles"]
        assert m["sim_total_cycles"] <= 2.0 * m["analytic_total_cycles"]
