"""Unit tests: the ResultStore query layer (repro.eval.queries)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.eval.queries import (
    MAX_PAGE_ROWS,
    ResultQuery,
    parse_result_query,
    query_results,
)
from repro.eval.store import ResultStore, case_key, evaluator_fingerprint
from repro.eval.stream import RunningStats
from repro.eval.sweeps import SweepCase, SweepResult


def _eval_q(case):
    return {"value": float(case.seed + len(case.arch))}


FP = evaluator_fingerprint(_eval_q)


def _put(store, case, metrics, arrays=None):
    key = case_key(case, FP)
    store.put(key, SweepResult(
        case=case, metrics=metrics, elapsed_s=0.125, arrays=arrays,
    ))
    return key


@pytest.fixture()
def filled(tmp_path):
    """A store mixing axes, tags, overrides, arrays and metric sets."""
    store = ResultStore(tmp_path)
    cases = []
    for arch in ("siam", "kite"):
        for workload in ("uniform", "neighbor"):
            for seed in (0, 1):
                case = SweepCase(
                    arch=arch, num_chiplets=16, workload=workload,
                    seed=seed, tag="grid-β" if arch == "siam" else "",
                )
                _put(store, case, {
                    "value": float(seed + len(arch)),
                    "latency": 10.0 * (seed + 1),
                })
                cases.append(case)
    # One overridden case with an array payload and a sparser metric set.
    special = SweepCase(
        arch="siam", num_chiplets=36, workload="uniform", seed=7,
        noi_overrides=(("flit_bytes", 64),), tag="overridden",
    )
    _put(store, special, {"value": 99.0},
         arrays={"tiers": np.arange(3)})
    cases.append(special)
    return ResultStore(tmp_path), cases


class TestFilters:
    def test_empty_query_matches_everything(self, filled):
        store, cases = filled
        out = query_results(store, ResultQuery(limit=100))
        assert out["total"] == len(cases)
        assert len(out["results"]) == len(cases)

    def test_axis_filters_narrow(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(
            archs=("siam",), workloads=("uniform",), seeds=(0,),
            sizes=(16,),
        ))
        assert out["total"] == 1
        row = out["results"][0]
        assert row["case"]["arch"] == "siam"
        assert row["case"]["workload"] == "uniform"

    def test_repeated_values_widen(self, filled):
        store, _ = filled
        both = query_results(store, ResultQuery(
            archs=("siam", "kite"), sizes=(16,),
        ))
        assert both["total"] == 8

    def test_unicode_tag_filter(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(tags=("grid-β",)))
        assert out["total"] == 4
        assert all(r["case"]["tag"] == "grid-β" for r in out["results"])

    def test_override_subset_match_is_numeric(self, filled):
        store, _ = filled
        for probe in (64, 64.0):
            out = query_results(store, ResultQuery(
                overrides=(("flit_bytes", probe),),
            ))
            assert out["total"] == 1
            assert out["results"][0]["case"]["tag"] == "overridden"
        none = query_results(store, ResultQuery(
            overrides=(("flit_bytes", 32),),
        ))
        assert none["total"] == 0

    def test_has_arrays_flag_without_payload_io(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(tags=("overridden",)))
        assert out["results"][0]["has_arrays"] is True
        assert store.stats.hits == 0  # no npz was ever opened


class TestPagination:
    def test_pages_tile_the_match_set_deterministically(self, filled):
        store, cases = filled
        whole = query_results(store, ResultQuery(limit=100))["results"]
        keys = [r["key"] for r in whole]
        assert keys == sorted(set(keys), key=lambda k: (
            next(r["case_id"] for r in whole if r["key"] == k), k
        ))
        paged = []
        for offset in range(0, len(cases), 2):
            page = query_results(
                store, ResultQuery(offset=offset, limit=2)
            )["results"]
            paged.extend(r["key"] for r in page)
        assert paged == keys

    def test_identical_queries_are_bit_identical(self, filled):
        store, _ = filled
        query = ResultQuery(metrics=("value",), pivot="value", limit=5)
        a = json.dumps(query_results(store, query), sort_keys=True)
        b = json.dumps(query_results(store, query), sort_keys=True)
        # A second, fresh reader over the same directory agrees too.
        fresh = ResultStore(store.root)
        c = json.dumps(query_results(fresh, query), sort_keys=True)
        assert a == b == c

    def test_limit_is_capped(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(limit=10**9))
        assert out["limit"] == MAX_PAGE_ROWS

    def test_offset_past_the_end_is_empty(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(offset=1000, limit=10))
        assert out["results"] == []
        assert out["total"] > 0


class TestAggregates:
    def test_stats_cover_all_matches_not_the_page(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(
            sizes=(16,), metrics=("value",), limit=2,
        ))
        agg = out["aggregates"]["value"]
        assert agg["count"] == 8
        assert len(out["results"]) == 2

    def test_stats_match_a_manual_fold(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(
            sizes=(16,), metrics=("latency",), limit=100,
        ))
        ref = RunningStats("latency")
        for row in out["results"]:
            ref.add(row["metrics"]["latency"])
        agg = out["aggregates"]["latency"]
        assert agg["count"] == ref.count
        assert agg["sum"] == ref.sum
        assert agg["mean"] == ref.mean
        assert agg["min"] == ref.min
        assert agg["max"] == ref.max
        assert agg["missing"] == 0

    def test_missing_metric_is_counted_not_raised(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(metrics=("latency",)))
        # The overridden special case lacks "latency".
        assert out["aggregates"]["latency"]["missing"] == 1
        assert out["aggregates"]["latency"]["count"] == 8

    def test_no_matches_yields_null_mean(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(
            archs=("nosuch",), metrics=("value",),
        ))
        agg = out["aggregates"]["value"]
        assert agg == {"count": 0, "sum": 0.0, "mean": None,
                       "min": None, "max": None, "missing": 0}

    def test_pivot_table(self, filled):
        store, _ = filled
        out = query_results(store, ResultQuery(
            sizes=(16,), pivot="value",
        ))
        rows = out["pivot"]["rows"]
        assert set(rows) == {"uniform", "neighbor"}
        assert set(rows["uniform"]) == {"siam", "kite"}
        # mean of seeds (0, 1) with value = seed + len(arch)
        assert rows["uniform"]["siam"] == pytest.approx(4.5)
        assert rows["uniform"]["kite"] == pytest.approx(4.5)
        assert out["pivot"]["missing"] == 0


class TestParse:
    def test_parse_full_query(self):
        query = parse_result_query({
            "arch": ["siam", "kite"], "size": ["16"], "seed": ["0", "1"],
            "workload": ["uniform"], "tag": ["grid-β"],
            "override": ["flit_bytes=64"],
            "metric": ["value,latency"], "pivot": ["value"],
            "offset": ["4"], "limit": ["2"],
        })
        assert query.archs == ("siam", "kite")
        assert query.sizes == (16,)
        assert query.seeds == (0, 1)
        assert query.tags == ("grid-β",)
        assert query.overrides == (("flit_bytes", 64),)
        assert query.metrics == ("value", "latency")
        assert query.pivot == "value"
        assert (query.offset, query.limit) == (4, 2)

    def test_unknown_parameter_is_an_error(self):
        with pytest.raises(ValueError, match="unknown query parameters"):
            parse_result_query({"archs": ["siam"]})

    def test_bad_ints_are_errors(self):
        with pytest.raises(ValueError, match="integer"):
            parse_result_query({"size": ["big"]})
        with pytest.raises(ValueError, match="integer"):
            parse_result_query({"limit": ["many"]})

    def test_bad_override_is_an_error(self):
        with pytest.raises(ValueError, match="name=value"):
            parse_result_query({"override": ["flit_bytes"]})

    def test_string_override_value_passes_through(self):
        query = parse_result_query({"override": ["sim_engine=jit"]})
        assert query.overrides == (("sim_engine", "jit"),)

    def test_negative_offset_clamps(self):
        assert parse_result_query({"offset": ["-3"]}).offset == 0
