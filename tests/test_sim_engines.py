"""Engine-split tests: epoch-synchronous engine vs the event-heap oracle.

Tentpole coverage for the layered simulator: the vectorized packetizer
is pinned packet-for-packet to the scalar reference, and the
epoch-synchronous contention engine is pinned bit-exactly to the event
heap -- completion cycles, latencies and ``message_completion`` --
across seeded random load sweeps on mesh (SIAM), Kite, SWAP and Floret,
plus the FIFO/saturation edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import load_sweep_traffic, parse_load_workload
from repro.net.routing import build_link_queue_index
from repro.net.simulator import (
    AUTO_EPOCH_MIN_PACKETS,
    ENGINES,
    Message,
    _packetize,
    _packetize_vec,
    _segmented_cummax,
    message_array,
    simulate,
    simulate_packets,
)
from repro.noi.topology import Chiplet, Link, Topology

TOPOLOGY_FIXTURES = ("small_mesh", "small_kite", "small_swap",
                     "small_floret")


def _topology(request, fixture):
    topo = request.getfixturevalue(fixture)
    return topo.topology if fixture == "small_floret" else topo


@pytest.fixture(scope="module")
def line():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(8)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(7)]
    return Topology("line8", chiplets, links)


def _random_messages(n, rng, count=60, window=64, max_payload=700):
    return [
        Message(
            src=int(rng.integers(0, n)),
            dst=int(rng.integers(0, n)),
            payload_bytes=int(rng.integers(0, max_payload)),
            inject_cycle=int(rng.integers(0, window)),
            message_id=i,
        )
        for i in range(count)
    ]


def assert_engines_identical(events, epochs):
    assert events.makespan_cycles == epochs.makespan_cycles
    assert events.mean_packet_latency == epochs.mean_packet_latency
    assert events.max_packet_latency == epochs.max_packet_latency
    assert events.packets_delivered == epochs.packets_delivered
    assert events.message_completion == epochs.message_completion


class TestPacketizeVec:
    """The vectorized packetizer vs the pinned scalar reference."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_on_random_messages(self, line, seed):
        rng = np.random.default_rng(seed)
        msgs = _random_messages(8, rng, count=80)
        scalar = _packetize(msgs, 64, line.params)
        inject, src, dst, flits, mids = _packetize_vec(msgs, 64, line.params)
        assert len(scalar) == inject.shape[0]
        got = list(zip(inject.tolist(), src.tolist(), dst.tolist(),
                       flits.tolist(), mids.tolist()))
        assert got == scalar

    def test_last_chunk_carries_remainder(self, line):
        # 300 B at 64 B packets, 32 B flits: 4 full packets (2 flits)
        # plus a 44 B tail packet (2 flits); 33 B tail -> 2 flits;
        # 65 B -> chunks 64 + 1 -> flits 2 + 1.
        msgs = [Message(0, 1, 65)]
        scalar = _packetize(msgs, 64, line.params)
        _, _, _, flits, _ = _packetize_vec(msgs, 64, line.params)
        assert flits.tolist() == [f for _, _, _, f, _ in scalar] == [2, 1]

    def test_filters_match_scalar(self, line):
        msgs = [
            Message(2, 2, 512),     # self: dropped
            Message(0, 1, 0),       # empty: dropped
            Message(0, 1, -5),      # negative: dropped
            Message(3, 4, 100, inject_cycle=7, message_id=9),
        ]
        scalar = _packetize(msgs, 64, line.params)
        inject, src, dst, flits, mids = _packetize_vec(msgs, 64, line.params)
        assert list(zip(inject.tolist(), src.tolist(), dst.tolist(),
                        flits.tolist(), mids.tolist())) == scalar
        assert mids.tolist() == [9, 9]

    def test_message_array_equals_message_list(self, line):
        rng = np.random.default_rng(3)
        msgs = _random_messages(8, rng, count=40)
        by_list = _packetize_vec(msgs, 64, line.params)
        by_array = _packetize_vec(message_array(msgs), 64, line.params)
        for a, b in zip(by_list, by_array):
            assert a.tolist() == b.tolist()

    def test_empty_inputs(self, line):
        for empty in ([], message_array([])):
            arrays = _packetize_vec(empty, 64, line.params)
            assert all(a.shape == (0,) for a in arrays)


class TestEngineEquivalence:
    """Epoch engine bit-exact vs the heap across seeded load sweeps."""

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_load_sweep(self, fixture, seed, request):
        topo = _topology(request, fixture)
        spec = parse_load_workload("uniform@0.08:w64+192")
        table = load_sweep_traffic(spec, topo.num_chiplets, seed)
        events = simulate(topo, table, engine="events")
        epochs = simulate(topo, table, engine="epochs")
        assert_engines_identical(events, epochs)
        assert events.engine == "events" and epochs.engine == "epochs"

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_hotspot_saturation(self, fixture, request):
        topo = _topology(request, fixture)
        spec = parse_load_workload("hotspot@0.15:w32+96")
        table = load_sweep_traffic(spec, topo.num_chiplets, 5)
        assert_engines_identical(
            simulate(topo, table, engine="events"),
            simulate(topo, table, engine="epochs"),
        )

    @pytest.mark.parametrize("fixture", TOPOLOGY_FIXTURES)
    def test_unbatched_matches_batched(self, fixture, request):
        topo = _topology(request, fixture)
        rng = np.random.default_rng(11)
        msgs = _random_messages(topo.num_chiplets, rng, count=120)
        batched = simulate(topo, msgs, engine="epochs")
        unbatched = simulate(
            topo, msgs, engine="epochs", batch_uncontended=False
        )
        assert_engines_identical(batched, unbatched)
        assert unbatched.batched_packets == 0

    def test_multi_packet_messages(self, line):
        # Payloads above packet size: per-packet flit heterogeneity
        # (remainder chunks) must serialise identically.
        rng = np.random.default_rng(7)
        msgs = _random_messages(8, rng, count=50, max_payload=900)
        assert_engines_identical(
            simulate(line, msgs, engine="events"),
            simulate(line, msgs, engine="epochs"),
        )


class TestEdgeCases:
    def test_fifo_tie_break_equal_inject(self, line):
        # Same route, same inject cycle: packetisation order wins, on
        # both engines, with identical completions.
        msgs = [Message(0, 3, 64, inject_cycle=4, message_id=0),
                Message(0, 3, 64, inject_cycle=4, message_id=1)]
        for engine in ("events", "epochs"):
            report = simulate(line, msgs, engine=engine)
            assert (report.message_completion[0]
                    < report.message_completion[1]), engine
        assert_engines_identical(
            simulate(line, msgs, engine="events"),
            simulate(line, msgs, engine="epochs"),
        )

    def test_zero_payload_and_self_destination(self, line):
        msgs = [Message(0, 0, 512), Message(1, 2, 0)]
        for engine in ENGINES:
            report = simulate(line, msgs, engine=engine)
            assert report.packets_delivered == 0
            assert report.message_completion == {}
            assert report.engine == "none"

    def test_single_link_saturation(self, line):
        # Every packet crosses the one link (0, 1): a single FIFO queue
        # drains one packet per `flits` cycles, and the epoch engine's
        # segmented scan must reproduce the heap exactly.
        flits = line.params.flits_per_packet
        msgs = [Message(0, 1, 64, inject_cycle=0, message_id=i)
                for i in range(40)]
        events = simulate(line, msgs, engine="events")
        epochs = simulate(line, msgs, engine="epochs")
        assert_engines_identical(events, epochs)
        completions = sorted(epochs.message_completion.values())
        assert all(b - a == flits
                   for a, b in zip(completions, completions[1:]))

    def test_unknown_engine_rejected(self, line):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(line, [Message(0, 1, 64)], engine="warp")

    def test_auto_picks_heap_below_threshold(self, line):
        report = simulate(
            line,
            [Message(0, 2, 64, message_id=0),
             Message(1, 3, 64, message_id=1)],
            engine="auto",
        )
        assert report.engine == "events"

    def test_auto_picks_jit_or_parallel_at_scale(self, small_mesh):
        from repro.net.grantkernel import NUMBA_AVAILABLE

        spec = parse_load_workload("uniform@0.2:w16+48")
        table = load_sweep_traffic(spec, small_mesh.num_chiplets, 1)
        sim = simulate_packets(small_mesh, table, engine="auto")
        assert sim.contended_packets >= AUTO_EPOCH_MIN_PACKETS
        expected = "epochs-jit" if NUMBA_AVAILABLE else "epochs-par"
        assert sim.engine == expected

    def test_auto_threshold_boundary(self, line):
        # Exactly AUTO_EPOCH_MIN_PACKETS contended packets flips auto
        # from the heap to the scalable tiers; one fewer stays on the
        # heap.  All identical single-packet messages over link (0, 1)
        # so every packet is contended.
        from repro.net.grantkernel import NUMBA_AVAILABLE

        k = AUTO_EPOCH_MIN_PACKETS
        msgs = [Message(0, 1, 64, message_id=i) for i in range(k)]
        at = simulate_packets(line, msgs, engine="auto")
        assert at.contended_packets == k
        expected = "epochs-jit" if NUMBA_AVAILABLE else "epochs-par"
        assert at.engine == expected
        below = simulate_packets(line, msgs[:-1], engine="auto")
        assert below.contended_packets == k - 1
        assert below.engine == "events"
        # And the tier auto picked agrees bit-exactly with the heap.
        pinned = simulate_packets(line, msgs, engine="events")
        assert_engines_identical(at.report(), pinned.report())

    def test_single_packet_every_engine(self, line):
        # A single packet rides the closed-form fast path; every engine
        # arg must still produce the identical report.
        msgs = [Message(0, 3, 64, inject_cycle=2, message_id=0)]
        reports = [simulate(line, msgs, engine=e) for e in ENGINES]
        for rep in reports[1:]:
            assert_engines_identical(reports[0], rep)
        assert reports[0].packets_delivered == 1

    def test_all_tiers_identical_reports(self, line):
        rng = np.random.default_rng(13)
        msgs = _random_messages(8, rng, count=150)
        baseline = simulate(line, msgs, engine="events")
        for engine in ("epochs", "epochs-par", "epochs-jit", "auto"):
            assert_engines_identical(
                baseline, simulate(line, msgs, engine=engine)
            )

    def test_packet_sim_exposes_per_packet_arrays(self, line):
        sim = simulate_packets(line, [Message(0, 3, 200, inject_cycle=5)])
        assert sim.packets == 4
        assert np.all(sim.inject == 5)
        assert np.all(sim.latency == sim.completion - sim.inject)
        assert sim.report().makespan_cycles == int(sim.completion.max())


class TestSegmentedCummax:
    """Both scan paths (banded accumulate, doubling fallback) vs a loop."""

    @staticmethod
    def _reference(values, seg_id):
        out = values.copy()
        for i in range(1, out.shape[0]):
            if seg_id[i] == seg_id[i - 1]:
                out[i] = max(out[i], out[i - 1])
        return out

    @pytest.mark.parametrize("seed", [0, 1])
    def test_banded_path(self, seed):
        rng = np.random.default_rng(seed)
        seg_id = np.sort(rng.integers(0, 12, 200))
        values = rng.integers(-500, 500, 200)
        assert np.array_equal(
            _segmented_cummax(values, seg_id),
            self._reference(values, seg_id),
        )

    def test_doubling_fallback_on_huge_values(self):
        rng = np.random.default_rng(2)
        seg_id = np.sort(rng.integers(0, 6, 64))
        # A value spread wide enough that banding would overflow int64.
        values = rng.integers(-(2 ** 61), 2 ** 61, 64)
        assert np.array_equal(
            _segmented_cummax(values, seg_id),
            self._reference(values, seg_id),
        )

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert _segmented_cummax(empty, empty).shape == (0,)


class TestLinkQueueIndex:
    def test_cached_on_tables(self, small_mesh):
        tables = small_mesh.routing_tables()
        assert tables.queue_index() is tables.queue_index()

    def test_transpose_consistent_with_route_csr(self, small_mesh):
        tables = small_mesh.routing_tables()
        index = tables.queue_index()
        assert index.num_directed_links == tables.num_directed_links
        # Entry counts per link must equal the route-CSR link usage.
        usage = np.bincount(tables.route_links,
                            minlength=tables.num_directed_links)
        assert np.array_equal(index.route_use_count, usage)
        assert np.array_equal(np.diff(index.link_indptr), usage)
        # Every (pair, hop) entry points back at this link in the CSR.
        for link in (0, 3, index.num_directed_links - 1):
            pairs, hops = index.entries_for_link(link)
            for pair, hop in zip(pairs.tolist(), hops.tolist()):
                lo = tables.route_indptr[pair]
                assert int(tables.route_links[lo + hop]) == link

    def test_hop_delta_matches_link_constants(self, small_kite):
        tables = small_kite.routing_tables()
        index = build_link_queue_index(tables)
        expected = (tables.link_wire_cycles
                    + tables.stage_cycles[tables.link_v])
        assert np.array_equal(index.hop_delta, expected)
        assert index.min_hop_delta == int(expected.min())

    def test_arrays_immutable(self, small_mesh):
        index = small_mesh.routing_tables().queue_index()
        with pytest.raises(ValueError):
            index.link_indptr[0] = 1
