"""Simulator contention semantics + fast-path equivalence tests.

Satellite coverage: FIFO per-link ordering, per-hop serialisation
latency, zero-load agreement with the analytic model, and exactness of
the array-batched contention-free fast path against the event loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.analytic import packet_latency_cycles, path_pipeline_cycles
from repro.net.simulator import Message, simulate, simulate_transfers
from repro.noi.topology import Chiplet, Link, Topology


@pytest.fixture(scope="module")
def line():
    chiplets = [Chiplet(i, x=i, y=0) for i in range(8)]
    links = [Link(i, i + 1, length_mm=3.0) for i in range(7)]
    return Topology("line8", chiplets, links)


def _flits_per_packet(topo):
    return topo.params.flits_per_packet


class TestFifoOrdering:
    def test_injection_order_wins_on_shared_link(self, line):
        report = simulate(
            line,
            [Message(0, 3, 64, inject_cycle=0, message_id=0),
             Message(0, 3, 64, inject_cycle=0, message_id=1)],
        )
        # Same route, same time: the first-packetized message holds the
        # link first and completes first.
        assert (
            report.message_completion[0] < report.message_completion[1]
        )

    def test_earlier_injection_completes_first(self, line):
        report = simulate(
            line,
            [Message(0, 4, 64, inject_cycle=5, message_id=0),
             Message(0, 4, 64, inject_cycle=0, message_id=1)],
        )
        assert (
            report.message_completion[1] < report.message_completion[0]
        )

    def test_fifo_holds_per_link_downstream(self, line):
        # Message 1 merges onto (2,3) behind message 0's packets.
        report = simulate(
            line,
            [Message(0, 4, 128, inject_cycle=0, message_id=0),
             Message(2, 4, 128, inject_cycle=0, message_id=1)],
        )
        solo = simulate(line, [Message(2, 4, 128, inject_cycle=0)])
        assert report.message_completion[1] >= solo.makespan_cycles


class TestSerialization:
    def test_second_packet_delayed_by_serialization(self, line):
        flits = _flits_per_packet(line)
        pair = simulate(
            line,
            [Message(0, 1, 64, message_id=0),
             Message(0, 1, 64, message_id=1)],
        )
        # One shared single-hop link: the trailing packet starts exactly
        # ``flits`` cycles after the leader.
        assert (
            pair.message_completion[1] - pair.message_completion[0] == flits
        )

    def test_multipacket_message_serialises_itself(self, line):
        flits = _flits_per_packet(line)
        one = simulate(line, [Message(0, 1, 64)])
        four = simulate(line, [Message(0, 1, 256)])
        assert (
            four.makespan_cycles - one.makespan_cycles == 3 * flits
        )


class TestZeroLoadAgreement:
    def test_single_hop_matches_analytic_packet_latency(self, line):
        report = simulate(line, [Message(0, 1, 64)])
        assert report.makespan_cycles == packet_latency_cycles(line, 0, 1)

    def test_zero_load_closed_form(self, line):
        # Store-and-forward at zero load: pipeline + one serialisation
        # per hop.
        for dst in (1, 2, 4, 7):
            report = simulate(line, [Message(0, dst, 64)])
            hops = line.hops(0, dst)
            expected = (
                path_pipeline_cycles(line, 0, dst)
                + hops * _flits_per_packet(line)
            )
            assert report.makespan_cycles == expected
            # Never faster than the analytic (wormhole) lower bound.
            assert report.makespan_cycles >= packet_latency_cycles(
                line, 0, dst
            )

    def test_disjoint_traffic_takes_fast_path(self, line):
        report = simulate(
            line,
            [Message(0, 1, 64, message_id=0),
             Message(2, 3, 64, message_id=1),
             Message(4, 5, 64, message_id=2)],
        )
        assert report.batched_packets == 3

    def test_shared_traffic_uses_event_loop(self, line):
        report = simulate(
            line,
            [Message(0, 2, 64, message_id=0),
             Message(1, 3, 64, message_id=1)],
        )
        assert report.batched_packets == 0


class TestFastPathExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_batched_equals_event_loop_on_mesh(self, small_mesh, seed):
        rng = np.random.default_rng(seed)
        n = small_mesh.num_chiplets
        transfers = [
            (int(s), int(d), int(p))
            for s, d, p in zip(
                rng.integers(0, n, 40),
                rng.integers(0, n, 40),
                rng.integers(1, 512, 40),
            )
        ]
        fast = simulate_transfers(small_mesh, transfers)
        slow = simulate_transfers(
            small_mesh, transfers, batch_uncontended=False
        )
        assert fast.makespan_cycles == slow.makespan_cycles
        assert fast.mean_packet_latency == slow.mean_packet_latency
        assert fast.max_packet_latency == slow.max_packet_latency
        assert fast.packets_delivered == slow.packets_delivered
        assert fast.message_completion == slow.message_completion
        assert slow.batched_packets == 0

    def test_mixed_contended_and_free(self, line):
        # Messages 0/1 fight over (0,1); message 2 is alone on (5,6).
        msgs = [
            Message(0, 1, 128, message_id=0),
            Message(0, 1, 128, message_id=1),
            Message(5, 6, 64, message_id=2),
        ]
        fast = simulate(line, msgs)
        slow = simulate(line, msgs, batch_uncontended=False)
        assert fast.message_completion == slow.message_completion
        assert fast.batched_packets == 1  # only message 2's lone packet

    def test_floret_fast_path_exact(self, small_floret):
        topo = small_floret.topology
        rng = np.random.default_rng(7)
        n = topo.num_chiplets
        transfers = [
            (int(s), int(d), int(p))
            for s, d, p in zip(
                rng.integers(0, n, 30),
                rng.integers(0, n, 30),
                rng.integers(1, 1024, 30),
            )
        ]
        fast = simulate_transfers(topo, transfers)
        slow = simulate_transfers(topo, transfers, batch_uncontended=False)
        assert fast.message_completion == slow.message_completion
        assert fast.makespan_cycles == slow.makespan_cycles
