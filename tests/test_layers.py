"""Unit tests: layer records and shape-inference builder."""

from __future__ import annotations

import pytest

from repro.workloads.layers import (
    Layer,
    LayerGraphBuilder,
    LayerKind,
    conv_out_hw,
    validate_layer_graph,
)


class TestConvOutHw:
    def test_same_padding(self):
        assert conv_out_hw(32, 32, kernel=3, stride=1, padding=1) == (32, 32)

    def test_stride_two_halves(self):
        assert conv_out_hw(224, 224, kernel=7, stride=2, padding=3) == (112, 112)

    def test_no_padding_shrinks(self):
        assert conv_out_hw(32, 32, kernel=3, stride=1, padding=0) == (30, 30)

    def test_pool_like(self):
        assert conv_out_hw(8, 8, kernel=2, stride=2, padding=0) == (4, 4)

    def test_rectangular_input(self):
        assert conv_out_hw(16, 8, kernel=3, stride=1, padding=1) == (16, 8)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_out_hw(2, 2, kernel=5, stride=1, padding=0)


class TestLayer:
    def test_out_elements(self):
        layer = Layer(0, "x", LayerKind.INPUT, (3, 4, 5))
        assert layer.out_elements == 60

    def test_weighted_flag(self):
        weightless = Layer(0, "p", LayerKind.INPUT, (1,))
        weighted = Layer(0, "c", LayerKind.CONV, (1,), weights=10, macs=10)
        assert not weightless.is_weighted
        assert weighted.is_weighted

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="negative weights"):
            Layer(0, "bad", LayerKind.CONV, (1,), weights=-1)

    def test_negative_macs_rejected(self):
        with pytest.raises(ValueError, match="negative macs"):
            Layer(0, "bad", LayerKind.CONV, (1,), macs=-1)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError, match="empty output shape"):
            Layer(0, "bad", LayerKind.CONV, ())

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError, match="non-positive dim"):
            Layer(0, "bad", LayerKind.CONV, (0, 3, 3))


class TestBuilderConv:
    def test_conv_shape(self):
        b = LayerGraphBuilder("t", (3, 32, 32))
        idx = b.add_conv(b.input_index, 16, kernel=3, padding=1)
        layers = b.build()
        assert layers[idx].out_shape == (16, 32, 32)

    def test_conv_weights_with_bn(self):
        b = LayerGraphBuilder("t", (3, 8, 8))
        idx = b.add_conv(b.input_index, 4, kernel=3, padding=1,
                         batchnorm=True)
        # 3*4*9 kernel weights + 2*4 folded BN.
        assert b.build()[idx].weights == 108 + 8

    def test_conv_weights_without_bn(self):
        b = LayerGraphBuilder("t", (3, 8, 8))
        idx = b.add_conv(b.input_index, 4, kernel=3, padding=1,
                         batchnorm=False)
        assert b.build()[idx].weights == 108

    def test_conv_bias(self):
        b = LayerGraphBuilder("t", (3, 8, 8))
        idx = b.add_conv(b.input_index, 4, kernel=1, bias=True,
                         batchnorm=False)
        assert b.build()[idx].weights == 12 + 4

    def test_conv_macs(self):
        b = LayerGraphBuilder("t", (3, 8, 8))
        idx = b.add_conv(b.input_index, 4, kernel=3, padding=1)
        # 3*4*9 per output pixel, 64 pixels.
        assert b.build()[idx].macs == 108 * 64

    def test_grouped_conv(self):
        b = LayerGraphBuilder("t", (4, 8, 8))
        idx = b.add_conv(b.input_index, 8, kernel=3, padding=1, groups=2,
                         batchnorm=False)
        assert b.build()[idx].weights == (4 // 2) * 8 * 9

    def test_groups_must_divide(self):
        b = LayerGraphBuilder("t", (3, 8, 8))
        with pytest.raises(ValueError, match="groups"):
            b.add_conv(b.input_index, 4, kernel=3, groups=2)


class TestBuilderOtherLayers:
    def test_fc_flattens(self):
        b = LayerGraphBuilder("t", (4, 2, 2))
        idx = b.add_fc(b.input_index, 10)
        layer = b.build()[idx]
        assert layer.out_shape == (10,)
        assert layer.weights == 16 * 10 + 10

    def test_fc_no_bias(self):
        b = LayerGraphBuilder("t", (4, 2, 2))
        idx = b.add_fc(b.input_index, 10, bias=False)
        assert b.build()[idx].weights == 160

    def test_pool_defaults_stride_to_kernel(self):
        b = LayerGraphBuilder("t", (4, 8, 8))
        idx = b.add_pool(b.input_index, kernel=2)
        assert b.build()[idx].out_shape == (4, 4, 4)

    def test_global_pool(self):
        b = LayerGraphBuilder("t", (4, 8, 8))
        idx = b.add_global_pool(b.input_index)
        assert b.build()[idx].out_shape == (4, 1, 1)

    def test_add_requires_matching_shapes(self):
        b = LayerGraphBuilder("t", (4, 8, 8))
        a = b.add_conv(b.input_index, 4, kernel=3, padding=1)
        c = b.add_conv(b.input_index, 8, kernel=3, padding=1)
        with pytest.raises(ValueError, match="mismatched"):
            b.add_add([a, c])

    def test_add_requires_two_inputs(self):
        b = LayerGraphBuilder("t", (4, 8, 8))
        with pytest.raises(ValueError, match="two inputs"):
            b.add_add([b.input_index])

    def test_concat_sums_channels(self):
        b = LayerGraphBuilder("t", (4, 8, 8))
        a = b.add_conv(b.input_index, 4, kernel=1)
        c = b.add_conv(b.input_index, 6, kernel=1)
        idx = b.add_concat([a, c])
        assert b.build()[idx].out_shape == (10, 8, 8)

    def test_concat_rejects_mismatched_spatial(self):
        b = LayerGraphBuilder("t", (4, 8, 8))
        a = b.add_conv(b.input_index, 4, kernel=1)
        c = b.add_pool(b.input_index, kernel=2)
        with pytest.raises(ValueError, match="spatial"):
            b.add_concat([a, c])

    def test_flatten(self):
        b = LayerGraphBuilder("t", (4, 2, 3))
        idx = b.add_flatten(b.input_index)
        assert b.build()[idx].out_shape == (24,)

    def test_bad_source_index(self):
        b = LayerGraphBuilder("t", (4, 2, 3))
        with pytest.raises(IndexError):
            b.add_conv(99, 4, kernel=1)


class TestValidation:
    def test_valid_graph_passes(self):
        b = LayerGraphBuilder("t", (3, 8, 8))
        b.add_conv(b.input_index, 4, kernel=1)
        validate_layer_graph(b.build())

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_layer_graph([])

    def test_duplicate_names_rejected(self):
        layers = [
            Layer(0, "input", LayerKind.INPUT, (1,)),
            Layer(1, "x", LayerKind.CONV, (1,), weights=1, macs=1, inputs=(0,)),
            Layer(2, "x", LayerKind.CONV, (1,), weights=1, macs=1, inputs=(1,)),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            validate_layer_graph(layers)

    def test_forward_edge_rejected(self):
        layers = [
            Layer(0, "input", LayerKind.INPUT, (1,)),
            Layer(1, "a", LayerKind.CONV, (1,), weights=1, macs=1, inputs=(2,)),
            Layer(2, "b", LayerKind.CONV, (1,), weights=1, macs=1, inputs=(0,)),
        ]
        with pytest.raises(ValueError, match="backwards"):
            validate_layer_graph(layers)

    def test_index_mismatch_rejected(self):
        layers = [
            Layer(0, "input", LayerKind.INPUT, (1,)),
            Layer(5, "a", LayerKind.CONV, (1,), weights=1, macs=1, inputs=(0,)),
        ]
        with pytest.raises(ValueError, match="position"):
            validate_layer_graph(layers)

    def test_first_layer_must_be_input(self):
        layers = [
            Layer(0, "a", LayerKind.CONV, (1,), weights=1, macs=1),
        ]
        with pytest.raises(ValueError, match="INPUT"):
            validate_layer_graph(layers)
