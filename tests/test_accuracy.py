"""Unit tests: thermal-noise accuracy model."""

from __future__ import annotations

import pytest

from repro.pim.accuracy import (
    BASELINE_ACCURACY_PCT,
    MAX_DROP_PCT,
    NOISE_SENSITIVITY,
    accuracy_drop_pct,
    assess,
    effective_noise,
)


class TestEffectiveNoise:
    def test_cool_pes_no_noise(self):
        assert effective_noise([300.0, 320.0, 330.0]) == 0.0

    def test_hot_pe_raises_noise(self):
        assert effective_noise([300.0, 360.0]) > 0.0

    def test_weighting_matters(self):
        temps = [300.0, 360.0]
        cold_heavy = effective_noise(temps, [0.9, 0.1])
        hot_heavy = effective_noise(temps, [0.1, 0.9])
        assert hot_heavy > cold_heavy

    def test_empty_is_zero(self):
        assert effective_noise([]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            effective_noise([300.0], [0.5, 0.5])

    def test_zero_weights(self):
        assert effective_noise([400.0], [0.0]) == 0.0


class TestDropModel:
    def test_zero_sigma_zero_drop(self):
        assert accuracy_drop_pct("resnet34", 0.0) == 0.0

    def test_monotone_in_sigma(self):
        drops = [accuracy_drop_pct("resnet34", s) for s in (0.05, 0.1, 0.3)]
        assert drops == sorted(drops)

    def test_saturates(self):
        assert accuracy_drop_pct("resnet152", 100.0) <= MAX_DROP_PCT

    def test_deeper_nets_more_sensitive(self):
        assert (
            accuracy_drop_pct("resnet152", 0.1)
            > accuracy_drop_pct("resnet18", 0.1)
        )

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            accuracy_drop_pct("lenet", 0.1)

    def test_all_families_calibrated(self):
        assert set(NOISE_SENSITIVITY) == set(BASELINE_ACCURACY_PCT)


class TestAssess:
    def test_cool_mapping_keeps_accuracy(self):
        report = assess("resnet50", [300.0] * 10)
        assert report.drop_pct == 0.0
        assert report.degraded_pct == report.baseline_pct

    def test_hot_mapping_degrades(self):
        report = assess("resnet50", [365.0] * 10)
        assert report.drop_pct > 2.0
        assert report.degraded_pct < report.baseline_pct
