"""Unit tests: transformer kernel inventory and storage analysis."""

from __future__ import annotations

import pytest

from repro.workloads.transformer import (
    BERT_BASE,
    BERT_LARGE,
    BERT_TINY,
    KernelClass,
    TransformerConfig,
    encoder_kernels,
    ff_block_chain,
    pim_suitability,
    storage_report,
)


class TestConfig:
    def test_d_head(self):
        assert BERT_BASE.d_head == 64
        assert BERT_TINY.d_head == 64

    def test_heads_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            TransformerConfig("bad", 2, 100, 3, 400, 128)

    def test_positive_dims(self):
        with pytest.raises(ValueError, match="positive"):
            TransformerConfig("bad", 0, 128, 2, 512, 128)


class TestKernels:
    def test_kernel_count(self):
        assert len(encoder_kernels(BERT_BASE)) == 11

    def test_static_kernels_have_weights(self):
        for k in encoder_kernels(BERT_BASE):
            if k.kind is KernelClass.STATIC_WEIGHT:
                assert k.weight_elements > 0

    def test_dynamic_kernels_have_no_weights(self):
        for k in encoder_kernels(BERT_BASE):
            if k.kind is KernelClass.DYNAMIC_MATMUL:
                assert k.weight_elements == 0
                assert k.intermediate_elements > 0

    def test_attention_weights_per_block(self):
        d = BERT_BASE.d_model
        attn_weights = sum(
            k.weight_elements
            for k in encoder_kernels(BERT_BASE)
            if k.name.startswith("attn/") and "proj" in k.name
        )
        assert attn_weights == 4 * d * d

    def test_ff_weights_per_block(self):
        cfg = BERT_BASE
        ff = sum(
            k.weight_elements
            for k in encoder_kernels(cfg)
            if k.name.startswith("ff/fc")
        )
        assert ff == 2 * cfg.d_model * cfg.d_ff

    def test_score_matrix_scales_with_seq_sq(self):
        small = TransformerConfig("s", 1, 128, 2, 512, 64)
        large = TransformerConfig("l", 1, 128, 2, 512, 256)
        def qk(cfg):
            return next(
                k for k in encoder_kernels(cfg) if k.name == "attn/qk_matmul"
            )
        # 4x sequence -> 16x score matrix (diluted by the linear K term).
        assert qk(large).intermediate_elements >= 9 * qk(small).intermediate_elements


class TestStorage:
    def test_base_ratio_exceeds_tiny(self):
        base = storage_report(BERT_BASE)
        tiny = storage_report(BERT_TINY)
        assert (
            base.intermediate_to_weight_ratio
            > tiny.intermediate_to_weight_ratio
        )

    def test_base_intermediates_exceed_weights(self):
        report = storage_report(BERT_BASE)
        assert report.intermediate_to_weight_ratio > 1.0

    def test_scaling_with_layers(self):
        one = TransformerConfig("one", 1, 128, 2, 512, 128)
        two = TransformerConfig("two", 2, 128, 2, 512, 128)
        r1, r2 = storage_report(one), storage_report(two)
        assert r2.weight_elements == 2 * r1.weight_elements
        assert r2.intermediate_elements == 2 * r1.intermediate_elements

    def test_dynamic_subset_of_intermediates(self):
        report = storage_report(BERT_LARGE)
        assert 0 < report.dynamic_matmul_elements <= report.intermediate_elements


class TestSuitability:
    def test_fractions_sum_to_one(self):
        suit = pim_suitability(BERT_BASE)
        assert suit["static_fraction"] + suit["dynamic_fraction"] == (
            pytest.approx(1.0)
        )

    def test_static_dominates_macs(self):
        # FF + projections dominate MAC counts for typical configs.
        assert pim_suitability(BERT_BASE)["static_fraction"] > 0.5

    def test_rewrite_bytes_positive(self):
        assert pim_suitability(BERT_TINY)["rewrite_bytes_per_inference"] > 0


class TestFFChain:
    def test_chain_length(self):
        chain = ff_block_chain(BERT_BASE)
        assert len(chain) == 2 * BERT_BASE.num_layers

    def test_chain_weights(self):
        chain = ff_block_chain(BERT_TINY)
        assert all(w == 128 * 512 for _name, w in chain)
