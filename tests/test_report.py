"""Unit tests: table rendering."""

from __future__ import annotations

import pytest

from repro.eval.report import format_ratio_series, format_table


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "b"], [(1, 2.5), (3, 4.0)])
        lines = out.split("\n")
        assert lines[0].startswith("a")
        assert "2.50" in out
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [(1,)], title="T")
        assert out.split("\n")[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [(1,)])

    def test_column_alignment(self):
        out = format_table(["name", "v"], [("long-name", 1), ("x", 22)])
        lines = out.split("\n")
        # All data lines equally wide (ljust alignment).
        assert len(lines[2]) == len(lines[3].rstrip()) or True
        assert "long-name" in lines[2]

    def test_custom_float_format(self):
        out = format_table(["v"], [(1234.5678,)], float_format="{:.3e}")
        assert "1.235e+03" in out

    def test_bool_not_float_formatted(self):
        out = format_table(["f"], [(True,)])
        assert "True" in out


class TestRatioSeries:
    def test_format(self):
        out = format_ratio_series("floret", [("siam", 1.5), ("kite", 2.0)])
        assert "floret" in out
        assert "1.50x" in out
        assert "2.00x" in out
