"""Unit tests: table rendering and perf-ratio history."""

from __future__ import annotations

import json

import pytest

from repro.eval.report import (
    append_ratio_history,
    format_ratio_series,
    format_table,
    load_ratio_history,
    ratio_drift_warning,
)


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "b"], [(1, 2.5), (3, 4.0)])
        lines = out.split("\n")
        assert lines[0].startswith("a")
        assert "2.50" in out
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [(1,)], title="T")
        assert out.split("\n")[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [(1,)])

    def test_column_alignment(self):
        out = format_table(["name", "v"], [("long-name", 1), ("x", 22)])
        lines = out.split("\n")
        # All data lines equally wide (ljust alignment).
        assert len(lines[2]) == len(lines[3].rstrip()) or True
        assert "long-name" in lines[2]

    def test_custom_float_format(self):
        out = format_table(["v"], [(1234.5678,)], float_format="{:.3e}")
        assert "1.235e+03" in out

    def test_bool_not_float_formatted(self):
        out = format_table(["f"], [(True,)])
        assert "True" in out


class TestRatioSeries:
    def test_format(self):
        out = format_ratio_series("floret", [("siam", 1.5), ("kite", 2.0)])
        assert "floret" in out
        assert "1.50x" in out
        assert "2.00x" in out

    def test_empty_series_is_header_only(self):
        out = format_ratio_series("base", [])
        assert out == "normalised to base (=1.00), metric: ratio"

    def test_custom_metric_label(self):
        out = format_ratio_series("base", [("a", 1.0)], metric="energy")
        assert "metric: energy" in out

    def test_one_line_per_entry(self):
        ratios = [("a", 0.5), ("b", 1.0), ("c", 2.0)]
        out = format_ratio_series("base", ratios)
        lines = out.split("\n")
        assert len(lines) == 1 + len(ratios)
        assert lines[1].endswith("0.50x")

    def test_long_names_still_render(self):
        out = format_ratio_series(
            "base", [("a-very-long-architecture-name", 1.25)]
        )
        assert "a-very-long-architecture-name: 1.25x" in out


class TestRatioHistory:
    def test_roundtrip_appends(self, tmp_path):
        path = tmp_path / "sub" / "ratio-history.jsonl"
        assert load_ratio_history(path) == []
        append_ratio_history(path, {"bench": "x", "speedup": 6.1})
        append_ratio_history(path, {"bench": "x", "speedup": 5.9})
        history = load_ratio_history(path)
        assert [rec["speedup"] for rec in history] == [6.1, 5.9]

    def test_torn_tail_line_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_ratio_history(path, {"speedup": 6.0})
        with path.open("a") as fh:
            fh.write('{"speedup": 5.')  # crashed writer
        with pytest.warns(RuntimeWarning, match="skipped 1"):
            history = load_ratio_history(path)
        assert [r["speedup"] for r in history] == [6.0]

    def test_drift_warns_below_tolerance(self):
        history = [{"speedup": s} for s in (6.0, 6.2, 5.8, 6.1)]
        assert ratio_drift_warning(history, 6.0) is None
        # 20% below the median 6.05 is ~4.84.
        message = ratio_drift_warning(history, 4.5)
        assert message is not None and "drifted" in message

    def test_short_history_never_warns(self):
        history = [{"speedup": 6.0}, {"speedup": 6.0}]
        assert ratio_drift_warning(history, 0.1) is None

    def test_window_limits_lookback(self):
        # Old fast runs outside the window must not skew the median.
        history = (
            [{"speedup": 20.0}] * 30 + [{"speedup": 5.0}] * 20
        )
        assert ratio_drift_warning(history, 4.5, window=20) is None
        assert ratio_drift_warning(history, 3.5, window=20) is not None

    def test_records_are_json_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_ratio_history(path, {"bench": "load_sweep", "quick": False,
                                    "speedup": 6.5})
        line = path.read_text().strip()
        assert json.loads(line)["bench"] == "load_sweep"


class TestRatioHistoryDegenerate:
    """Regression: a damaged/degenerate history must degrade the drift
    watch, never raise (a truncated actions-cache restore used to be
    able to fail the CI bench step)."""

    def test_valid_json_non_dict_lines_skipped_with_warning(
        self, tmp_path
    ):
        # A JSON array/scalar line parsed fine and used to reach
        # consumers, whose rec.get(...) then raised AttributeError.
        path = tmp_path / "h.jsonl"
        append_ratio_history(path, {"speedup": 6.0})
        with path.open("a") as fh:
            fh.write("[1, 2, 3]\n")
            fh.write("42\n")
            fh.write('"speedup"\n')
        with pytest.warns(RuntimeWarning, match="skipped 3"):
            history = load_ratio_history(path)
        assert all(isinstance(rec, dict) for rec in history)
        assert [r["speedup"] for r in history] == [6.0]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("")
        assert load_ratio_history(path) == []
        assert ratio_drift_warning([], 1.0) is None

    def test_single_entry_history_never_warns(self):
        assert ratio_drift_warning([{"speedup": 6.0}], 0.01) is None

    def test_null_and_non_numeric_values_ignored(self):
        history = [
            {"speedup": None},
            {"speedup": "fast"},
            {"speedup": 6.0},
            {"speedup": 6.1},
        ]
        # Only two usable values: below min_history, no verdict, and
        # critically no TypeError/ValueError from float().
        assert ratio_drift_warning(history, 1.0) is None

    def test_nan_and_inf_values_ignored(self):
        history = [{"speedup": float("nan")}] * 10 + [
            {"speedup": float("inf")},
            {"speedup": 6.0}, {"speedup": 6.0}, {"speedup": 6.2},
        ]
        message = ratio_drift_warning(history, 4.0)
        assert message is not None and "6.0" in message

    def test_zero_or_negative_trailing_median_never_warns(self):
        history = [{"speedup": 0.0}] * 5
        assert ratio_drift_warning(history, 0.0001) is None
        history = [{"speedup": -2.0}] * 5
        assert ratio_drift_warning(history, 1.0) is None

    def test_non_finite_current_never_warns(self):
        history = [{"speedup": 6.0}] * 5
        assert ratio_drift_warning(history, float("nan")) is None


class TestFormatShardProgress:
    def test_fill_and_counts(self):
        from repro.eval.report import format_shard_progress

        art = format_shard_progress(3, 8, width=8)
        assert art == "grid [###.....] 3/8 (37%)"

    def test_complete_bar(self):
        from repro.eval.report import format_shard_progress

        art = format_shard_progress(8, 8, width=8)
        assert "[########]" in art and "8/8 (100%)" in art

    def test_empty_grid(self):
        from repro.eval.report import format_shard_progress

        assert format_shard_progress(0, 0, width=4) == "grid [....] 0/0"

    def test_custom_label(self):
        from repro.eval.report import format_shard_progress

        assert format_shard_progress(0, 2, label="gen 3").startswith(
            "gen 3 ["
        )

    def test_partial_fill_never_rounds_to_full(self):
        from repro.eval.report import format_shard_progress

        art = format_shard_progress(7, 8, width=8)
        assert "[#######.]" in art and "(87%)" in art

    def test_overshoot_clamps_to_width(self):
        # A done count past total (duplicate landings) must not grow
        # the bar beyond its width.
        from repro.eval.report import format_shard_progress

        art = format_shard_progress(10, 8, width=8)
        assert "[########]" in art
        assert "10/8" in art

    def test_zero_done_is_all_dots(self):
        from repro.eval.report import format_shard_progress

        art = format_shard_progress(0, 5, width=5)
        assert "[.....]" in art and "0/5 (0%)" in art
