"""Unit tests: the Floret NoI builder."""

from __future__ import annotations

import pytest

from repro.core.floret import build_floret
from repro.core.sfc import single_sfc_curve


class TestFloretDesign:
    def test_connected(self, small_floret):
        assert small_floret.topology.is_connected()

    def test_multicast_capable(self, small_floret):
        assert small_floret.topology.multicast_capable

    def test_allocation_order_is_permutation(self, small_floret):
        order = small_floret.allocation_order
        assert sorted(order) == list(range(36))

    def test_mostly_two_port_routers(self, small_floret):
        hist = small_floret.topology.port_histogram()
        assert hist.get(2, 0) >= 0.7 * sum(hist.values())

    def test_heads_tails_exist(self, small_floret):
        assert len(small_floret.head_indices()) == 4
        assert len(small_floret.tail_indices()) == 4

    def test_intra_petal_links_single_hop(self, small_floret):
        design = small_floret
        top_level = set()
        for u, v in design.top_level_links:
            top_level.add((min(u, v), max(u, v)))
        for link in design.topology.links:
            key = (min(link.u, link.v), max(link.u, link.v))
            if key not in top_level:
                pitch = design.topology.params.chiplet_pitch_mm
                assert link.length_mm == pytest.approx(pitch)

    def test_top_level_within_hop_budget(self):
        design = build_floret(100, 6, top_level_max_hops=3)
        pitch = design.topology.params.chiplet_pitch_mm
        lengths = {
            (min(u, v), max(u, v)) for u, v in design.top_level_links
        }
        for link in design.topology.links:
            key = (min(link.u, link.v), max(link.u, link.v))
            if key in lengths and key not in {
                (min(a, b), max(a, b)) for a, b in design.fallback_links
            }:
                assert link.length_mm <= 3 * pitch + 1e-9

    def test_100_chiplet_reference_shape(self):
        design = build_floret(100, 6)
        hist = design.topology.port_histogram()
        assert max(hist, key=hist.get) == 2
        assert design.topology.num_links < 120

    def test_custom_curve(self):
        curve = single_sfc_curve(6, 6)
        design = build_floret(36, curve=curve)
        assert design.curve.num_petals == 1
        # Pure chain: exactly n-1 links, no top-level.
        assert design.topology.num_links == 35
        assert design.top_level_links == ()

    def test_invalid_chiplet_count(self):
        with pytest.raises(ValueError):
            build_floret(17, 6)

    def test_chiplet_positions_match_curve(self, small_floret):
        for cell, index in small_floret.cell_to_index.items():
            chiplet = small_floret.topology.chiplet(index)
            assert (chiplet.x, chiplet.y) == cell
