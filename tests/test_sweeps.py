"""Unit tests: the SweepRunner parameter-sweep subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.sweeps import (
    WORKERS_ENV,
    SweepCase,
    SweepRunner,
    case_topology,
    evaluate_comm_case,
    evaluate_table1_case,
    evaluate_topology_case,
    evaluate_utilization_case,
    sweep_grid,
    synthetic_traffic,
)
from repro.net.analytic import communication_cost


def _boom_evaluate(case: SweepCase):
    if case.arch == "boom":
        raise RuntimeError("synthetic failure")
    return {"value": float(case.num_chiplets)}


class TestSweepCase:
    def test_case_id_includes_overrides(self):
        case = SweepCase(
            arch="siam", num_chiplets=16, workload="uniform", seed=3,
            noi_overrides=(("flit_bytes", 64),),
        )
        assert "siam/16/uniform/s3" in case.case_id
        assert "flit_bytes=64" in case.case_id

    def test_params_apply_overrides(self):
        case = SweepCase(arch="siam", noi_overrides=(("flit_bytes", 64),))
        assert case.params().flit_bytes == 64

    def test_topology_override_reaches_builder(self):
        base = case_topology(SweepCase(arch="siam", num_chiplets=16))
        wide = case_topology(SweepCase(
            arch="siam", num_chiplets=16,
            noi_overrides=(("chiplet_pitch_mm", 6.0),),
        ))
        assert (
            wide.total_link_length_mm() > base.total_link_length_mm()
        )


class TestGrid:
    def test_cartesian_product(self):
        cases = sweep_grid(
            archs=("siam", "kite"), sizes=(16, 36),
            workloads=("uniform", "neighbor"), seeds=(0, 1),
        )
        assert len(cases) == 2 * 2 * 2 * 2
        assert len({c.case_id for c in cases}) == len(cases)

    def test_topology_major_order(self):
        cases = sweep_grid(archs=("siam", "kite"), workloads=("a", "b"))
        assert [c.arch for c in cases] == ["siam", "siam", "kite", "kite"]


class TestSyntheticTraffic:
    @pytest.mark.parametrize(
        "pattern", ["uniform", "neighbor", "hotspot", "transpose"]
    )
    def test_patterns_deterministic(self, pattern):
        a = synthetic_traffic(pattern, 16, seed=4)
        b = synthetic_traffic(pattern, 16, seed=4)
        assert np.array_equal(a, b)
        assert a.shape[1] == 3
        assert np.all(a[:, 2] >= 1)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            synthetic_traffic("nope", 16, seed=0)


class TestRunnerInline:
    def test_inline_run_collects_metrics(self):
        cases = sweep_grid(
            archs=("siam",), sizes=(16,),
            workloads=("uniform", "neighbor"), seeds=(0, 1),
        )
        outcome = SweepRunner(evaluate_comm_case, workers=1).run(cases)
        assert len(outcome) == 4
        assert not outcome.failures
        assert outcome.workers == 1
        assert np.all(outcome.metric("latency_cycles") > 0)

    def test_inline_matches_scalar_oracle(self):
        case = SweepCase(arch="kite", num_chiplets=16, workload="uniform",
                         seed=2)
        metrics = evaluate_comm_case(case)
        topo = case_topology(case)
        oracle = communication_cost(
            topo, [tuple(r) for r in
                   synthetic_traffic("uniform", 16, 2).tolist()]
        )
        assert metrics["latency_cycles"] == oracle.latency_cycles
        assert metrics["energy_pj"] == pytest.approx(
            oracle.energy_pj, rel=1e-9
        )

    def test_errors_are_captured_not_raised(self):
        cases = [SweepCase(arch="siam", num_chiplets=16),
                 SweepCase(arch="boom", num_chiplets=16)]
        outcome = SweepRunner(_boom_evaluate, workers=1).run(cases)
        assert len(outcome.ok) == 1
        assert len(outcome.failures) == 1
        assert "synthetic failure" in outcome.failures[0].error

    def test_mix_case_rejects_unsupported_axes(self):
        from repro.eval.sweeps import evaluate_mix_case

        # The schedule path has no parameter plumbing: silently
        # returning default-parameter data for an override sweep would
        # mislabel identical results, so it must refuse.
        with pytest.raises(ValueError, match="noi_overrides"):
            evaluate_mix_case(SweepCase(
                arch="floret", num_chiplets=100, workload="WL1",
                noi_overrides=(("flit_bytes", 16),),
            ))
        with pytest.raises(ValueError, match="seed"):
            evaluate_mix_case(SweepCase(
                arch="floret", num_chiplets=100, workload="WL1", seed=3,
            ))

    def test_topology_census_metrics(self):
        outcome = SweepRunner(evaluate_topology_case, workers=1).run(
            sweep_grid(archs=("siam", "kite"), sizes=(16,))
        )
        by_arch = outcome.by_arch()
        # Kite (folded torus) has more links than a mesh at equal size.
        assert (
            by_arch["kite"][0].metrics["num_links"]
            > by_arch["siam"][0].metrics["num_links"]
        )


class TestRunnerParallel:
    def test_process_pool_or_fallback_is_correct(self):
        """Pool path when available; silently-inline otherwise -- either
        way results must equal the inline reference run."""
        cases = sweep_grid(
            archs=("siam",), sizes=(16,),
            workloads=("uniform", "neighbor", "transpose"), seeds=(0, 1),
        )
        parallel = SweepRunner(evaluate_comm_case, workers=2).run(cases)
        inline = SweepRunner(evaluate_comm_case, workers=1).run(cases)
        assert not parallel.failures
        assert [r.case for r in parallel.results] == [
            r.case for r in inline.results
        ]
        for p, i in zip(parallel.results, inline.results):
            assert p.metrics == i.metrics


class TestWorkerOverride:
    """The REPRO_SWEEP_WORKERS env knob beats both defaults and args."""

    def test_env_overrides_constructor_workers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        runner = SweepRunner(evaluate_comm_case, workers=16)
        assert runner._resolve_workers(100) == 3

    def test_env_forces_inline(self, monkeypatch):
        # REPRO_SWEEP_WORKERS=1 turns any sweep into a deterministic,
        # pool-free run -- the documented debugging escape hatch.
        monkeypatch.setenv(WORKERS_ENV, "1")
        cases = sweep_grid(archs=("siam",), sizes=(16,),
                           workloads=("uniform", "neighbor"))
        outcome = SweepRunner(evaluate_comm_case, workers=8).run(cases)
        assert outcome.workers == 1
        assert not outcome.failures

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert SweepRunner(evaluate_comm_case)._resolve_workers(10) == 1

    def test_unset_env_picks_cpu_case_minimum(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert SweepRunner(evaluate_comm_case)._resolve_workers(1) == 1


class TestPoolDegradation:
    """Pool-level failures degrade to inline evaluation -- loudly."""

    CASES = [SweepCase(arch="siam", num_chiplets=16, workload=w)
             for w in ("uniform", "neighbor", "transpose")]

    def _broken_pool(self, exc):
        class BrokenPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *args):
                return False

            def map(self, *args, **kwargs):
                raise exc

        return BrokenPool

    @pytest.mark.parametrize("exc", [
        __import__("concurrent.futures.process",
                   fromlist=["BrokenProcessPool"]).BrokenProcessPool(
                       "workers died"),
        OSError("no /dev/shm semaphores"),
        __import__("pickle").PicklingError("unpicklable evaluate"),
    ])
    def test_known_pool_failures_rerun_inline(self, monkeypatch, exc):
        import repro.eval.sweeps as sweeps_mod

        monkeypatch.setattr(sweeps_mod, "ProcessPoolExecutor",
                            self._broken_pool(exc))
        runner = SweepRunner(evaluate_comm_case, workers=2)
        with pytest.warns(RuntimeWarning, match="re-running.*inline"):
            outcome = runner.run(self.CASES)
        assert outcome.workers == 1
        assert not outcome.failures
        inline = SweepRunner(evaluate_comm_case, workers=1).run(self.CASES)
        for degraded, reference in zip(outcome.results, inline.results):
            assert degraded.metrics == reference.metrics

    def test_unknown_pool_failures_propagate(self, monkeypatch):
        import repro.eval.sweeps as sweeps_mod

        monkeypatch.setattr(
            sweeps_mod, "ProcessPoolExecutor",
            self._broken_pool(KeyboardInterrupt()),
        )
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(evaluate_comm_case, workers=2).run(self.CASES)

    def test_unpicklable_evaluate_degrades_for_real(self):
        # Not a monkeypatched pool: a genuine lambda evaluator cannot be
        # shipped to workers, so the real pool raises PicklingError and
        # the sweep must still complete inline.
        runner = SweepRunner(
            lambda case: {"value": float(case.num_chiplets)}, workers=2
        )
        with pytest.warns(RuntimeWarning, match="re-running.*inline"):
            outcome = runner.run(self.CASES)
        assert outcome.workers == 1
        assert [r.metrics["value"] for r in outcome.results] == [16.0] * 3


class TestStoreIntegration:
    def test_gather_runner_cold_then_warm(self, tmp_path):
        from repro.eval.store import ResultStore

        cases = sweep_grid(archs=("siam",), sizes=(16,),
                           workloads=("uniform", "neighbor"), seeds=(0, 1))
        cold = SweepRunner(evaluate_comm_case, workers=1,
                           store=ResultStore(tmp_path)).run(cases)
        assert cold.store_hits == 0
        assert cold.evaluated == len(cases)
        warm = SweepRunner(evaluate_comm_case, workers=1,
                           store=ResultStore(tmp_path)).run(cases)
        assert warm.store_hits == len(cases)
        assert warm.evaluated == 0
        for a, b in zip(warm.results, cold.results):
            assert a.case == b.case
            assert a.metrics == b.metrics
        assert warm.pivot("energy_pj") == cold.pivot("energy_pj")

    def test_case_keys_track_evaluator(self):
        cases = [SweepCase(arch="siam", num_chiplets=16)]
        keys_comm = SweepRunner(evaluate_comm_case).case_keys(cases)
        keys_topo = SweepRunner(evaluate_topology_case).case_keys(cases)
        assert keys_comm != keys_topo


class TestExperimentEvaluators:
    """The Fig. 4 / Table I evaluators reject unsupported axes loudly."""

    def test_utilization_rejects_unsupported_axes(self):
        with pytest.raises(ValueError, match="noi_overrides"):
            evaluate_utilization_case(SweepCase(
                arch="swap", num_chiplets=100, workload="WL3",
                noi_overrides=(("flit_bytes", 16),),
            ))
        with pytest.raises(ValueError, match="seed"):
            evaluate_utilization_case(SweepCase(
                arch="swap", num_chiplets=100, workload="WL3", seed=2,
            ))

    def test_table1_census_matches_zoo(self):
        from repro.workloads.zoo import table1_model

        metrics = evaluate_table1_case(
            SweepCase(arch="floret", workload="DNN10")
        )
        model = table1_model("DNN10")
        assert metrics["measured_params_millions"] == pytest.approx(
            model.total_params / 1e6
        )
        assert metrics["paper_params_millions"] > 0

    def test_moo_case_rejects_wrong_system(self):
        from repro.eval.sweeps import evaluate_moo_case

        with pytest.raises(ValueError, match="Floret-3D"):
            evaluate_moo_case(SweepCase(arch="siam", num_chiplets=100,
                                        workload="DNN10"))
        with pytest.raises(ValueError, match="100-PE"):
            evaluate_moo_case(SweepCase(arch="floret", num_chiplets=36,
                                        workload="DNN10"))


class TestAggregation:
    @pytest.fixture(scope="class")
    def outcome(self):
        cases = sweep_grid(
            archs=("siam", "kite"), sizes=(16,),
            workloads=("uniform", "neighbor"), seeds=(0,),
        )
        return SweepRunner(evaluate_comm_case, workers=1).run(cases)

    def test_pivot_table(self, outcome):
        table = outcome.pivot("energy_pj")
        assert set(table) == {"uniform", "neighbor"}
        assert set(table["uniform"]) == {"siam", "kite"}

    def test_rows_for_format_table(self, outcome):
        rows = outcome.rows(["latency_cycles", "energy_pj"])
        assert len(rows) == 4
        assert all(len(r) == 3 for r in rows)

    def test_group_by_workload(self, outcome):
        groups = outcome.group_by(lambda c: c.workload)
        assert {len(v) for v in groups.values()} == {2}
