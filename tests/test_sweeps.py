"""Unit tests: the SweepRunner parameter-sweep subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.sweeps import (
    SweepCase,
    SweepRunner,
    case_topology,
    evaluate_comm_case,
    evaluate_topology_case,
    sweep_grid,
    synthetic_traffic,
)
from repro.net.analytic import communication_cost


def _boom_evaluate(case: SweepCase):
    if case.arch == "boom":
        raise RuntimeError("synthetic failure")
    return {"value": float(case.num_chiplets)}


class TestSweepCase:
    def test_case_id_includes_overrides(self):
        case = SweepCase(
            arch="siam", num_chiplets=16, workload="uniform", seed=3,
            noi_overrides=(("flit_bytes", 64),),
        )
        assert "siam/16/uniform/s3" in case.case_id
        assert "flit_bytes=64" in case.case_id

    def test_params_apply_overrides(self):
        case = SweepCase(arch="siam", noi_overrides=(("flit_bytes", 64),))
        assert case.params().flit_bytes == 64

    def test_topology_override_reaches_builder(self):
        base = case_topology(SweepCase(arch="siam", num_chiplets=16))
        wide = case_topology(SweepCase(
            arch="siam", num_chiplets=16,
            noi_overrides=(("chiplet_pitch_mm", 6.0),),
        ))
        assert (
            wide.total_link_length_mm() > base.total_link_length_mm()
        )


class TestGrid:
    def test_cartesian_product(self):
        cases = sweep_grid(
            archs=("siam", "kite"), sizes=(16, 36),
            workloads=("uniform", "neighbor"), seeds=(0, 1),
        )
        assert len(cases) == 2 * 2 * 2 * 2
        assert len({c.case_id for c in cases}) == len(cases)

    def test_topology_major_order(self):
        cases = sweep_grid(archs=("siam", "kite"), workloads=("a", "b"))
        assert [c.arch for c in cases] == ["siam", "siam", "kite", "kite"]


class TestSyntheticTraffic:
    @pytest.mark.parametrize(
        "pattern", ["uniform", "neighbor", "hotspot", "transpose"]
    )
    def test_patterns_deterministic(self, pattern):
        a = synthetic_traffic(pattern, 16, seed=4)
        b = synthetic_traffic(pattern, 16, seed=4)
        assert np.array_equal(a, b)
        assert a.shape[1] == 3
        assert np.all(a[:, 2] >= 1)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            synthetic_traffic("nope", 16, seed=0)


class TestRunnerInline:
    def test_inline_run_collects_metrics(self):
        cases = sweep_grid(
            archs=("siam",), sizes=(16,),
            workloads=("uniform", "neighbor"), seeds=(0, 1),
        )
        outcome = SweepRunner(evaluate_comm_case, workers=1).run(cases)
        assert len(outcome) == 4
        assert not outcome.failures
        assert outcome.workers == 1
        assert np.all(outcome.metric("latency_cycles") > 0)

    def test_inline_matches_scalar_oracle(self):
        case = SweepCase(arch="kite", num_chiplets=16, workload="uniform",
                         seed=2)
        metrics = evaluate_comm_case(case)
        topo = case_topology(case)
        oracle = communication_cost(
            topo, [tuple(r) for r in
                   synthetic_traffic("uniform", 16, 2).tolist()]
        )
        assert metrics["latency_cycles"] == oracle.latency_cycles
        assert metrics["energy_pj"] == pytest.approx(
            oracle.energy_pj, rel=1e-9
        )

    def test_errors_are_captured_not_raised(self):
        cases = [SweepCase(arch="siam", num_chiplets=16),
                 SweepCase(arch="boom", num_chiplets=16)]
        outcome = SweepRunner(_boom_evaluate, workers=1).run(cases)
        assert len(outcome.ok) == 1
        assert len(outcome.failures) == 1
        assert "synthetic failure" in outcome.failures[0].error

    def test_mix_case_rejects_unsupported_axes(self):
        from repro.eval.sweeps import evaluate_mix_case

        # The schedule path has no parameter plumbing: silently
        # returning default-parameter data for an override sweep would
        # mislabel identical results, so it must refuse.
        with pytest.raises(ValueError, match="noi_overrides"):
            evaluate_mix_case(SweepCase(
                arch="floret", num_chiplets=100, workload="WL1",
                noi_overrides=(("flit_bytes", 16),),
            ))
        with pytest.raises(ValueError, match="seed"):
            evaluate_mix_case(SweepCase(
                arch="floret", num_chiplets=100, workload="WL1", seed=3,
            ))

    def test_topology_census_metrics(self):
        outcome = SweepRunner(evaluate_topology_case, workers=1).run(
            sweep_grid(archs=("siam", "kite"), sizes=(16,))
        )
        by_arch = outcome.by_arch()
        # Kite (folded torus) has more links than a mesh at equal size.
        assert (
            by_arch["kite"][0].metrics["num_links"]
            > by_arch["siam"][0].metrics["num_links"]
        )


class TestRunnerParallel:
    def test_process_pool_or_fallback_is_correct(self):
        """Pool path when available; silently-inline otherwise -- either
        way results must equal the inline reference run."""
        cases = sweep_grid(
            archs=("siam",), sizes=(16,),
            workloads=("uniform", "neighbor", "transpose"), seeds=(0, 1),
        )
        parallel = SweepRunner(evaluate_comm_case, workers=2).run(cases)
        inline = SweepRunner(evaluate_comm_case, workers=1).run(cases)
        assert not parallel.failures
        assert [r.case for r in parallel.results] == [
            r.case for r in inline.results
        ]
        for p, i in zip(parallel.results, inline.results):
            assert p.metrics == i.metrics


class TestAggregation:
    @pytest.fixture(scope="class")
    def outcome(self):
        cases = sweep_grid(
            archs=("siam", "kite"), sizes=(16,),
            workloads=("uniform", "neighbor"), seeds=(0,),
        )
        return SweepRunner(evaluate_comm_case, workers=1).run(cases)

    def test_pivot_table(self, outcome):
        table = outcome.pivot("energy_pj")
        assert set(table) == {"uniform", "neighbor"}
        assert set(table["uniform"]) == {"siam", "kite"}

    def test_rows_for_format_table(self, outcome):
        rows = outcome.rows(["latency_cycles", "energy_pj"])
        assert len(rows) == 4
        assert all(len(r) == 3 for r in rows)

    def test_group_by_workload(self, outcome):
        groups = outcome.group_by(lambda c: c.workload)
        assert {len(v) for v in groups.values()} == {2}
