#!/usr/bin/env python
"""Quickstart: build a Floret NoI, map a DNN, read out performance.

Walks the library's core loop in five steps:

1. build the 100-chiplet, 6-petal Floret NoI (the paper's system),
2. pick a workload from the Table I zoo,
3. plan its chiplet allocation on ReRAM PIM chiplets,
4. map it contiguously along the space-filling curve, and
5. evaluate latency / energy / hops on the NoI.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ContiguousMapper, build_floret
from repro.net import evaluate_task
from repro.pim import ChipletSpec, plan_allocation
from repro.workloads import build_model


def main() -> None:
    # 1. The NoI: 100 chiplets stitched into six SFC petals.
    design = build_floret(num_chiplets=100, petals=6)
    topology = design.topology
    print(f"Floret NoI: {topology.num_chiplets} chiplets, "
          f"{topology.num_links} links, "
          f"router ports {topology.port_histogram()}")
    print(f"Eq. (1) mean tail->head distance d = "
          f"{design.curve.eq1_distance:.2f} grid hops")

    # 2. A workload from the paper's Table I.
    model = build_model("resnet50", "imagenet")
    print(f"\nWorkload: {model.name} ({model.params_millions():.1f}M "
          f"params, {len(model.weight_layers())} weighted layers)")

    # 3. Pack the layers into ReRAM chiplet loads.
    spec = ChipletSpec.from_params()
    plan = plan_allocation(model, spec)
    print(f"Allocation: {plan.num_chiplets} chiplets "
          f"({spec.weight_capacity / 1e6:.1f}M weights each)")

    # 4. Dataflow-aware mapping: consecutive layers on adjacent chiplets.
    mapper = ContiguousMapper(design.allocation_order, topology)
    placement = mapper.map_task(
        "demo", model, plan, frozenset(range(topology.num_chiplets))
    )
    assert placement is not None
    print(f"Mapped to chiplets {placement.chiplet_ids[:8]}... "
          f"(max adjacent hops: "
          f"{placement.max_adjacent_hops(topology)})")

    # 5. Evaluate.
    perf = evaluate_task(
        topology, model, plan, placement.chiplet_ids,
        task_id="demo", spec=spec,
    )
    print(f"\nInference latency : {perf.latency_cycles:,} cycles")
    print(f"NoI latency       : {perf.noi_latency_cycles:,} cycles")
    print(f"NoI energy        : {perf.noi_energy_pj / 1e6:.2f} uJ")
    print(f"Compute energy    : {perf.compute_energy_pj / 1e6:.2f} uJ")
    print(f"Mean packet lat.  : {perf.mean_packet_latency:.1f} cycles")
    print(f"Traffic-weighted hops: {perf.weighted_hops:.2f}")


if __name__ == "__main__":
    main()
