#!/usr/bin/env python
"""Sweep-as-a-service: submit, stream, and query over HTTP.

Demonstrates the `repro.svc` subsystem end to end, entirely in one
process (the same requests work against a remote
`python -m repro.svc serve --store DIR` instance):

1. start the HTTP service over a fresh store directory,
2. `POST /v1/sweeps` a communication grid and follow the job's
   progress (done/total, ETA) via `GET /v1/sweeps/{id}`,
3. stream live `report --json` frames from the job's trace directory
   over `GET /v1/sweeps/{id}/events` (Server-Sent Events),
4. slice the accumulated results with the `/v1/results` query layer
   (axis filters, server-side aggregates, a pivot table), and
5. re-POST the identical grid: every case replays from the store,
   zero evaluations.

Run:  python examples/serve_sweep.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.eval import format_table
from repro.svc import start_service


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.loads(response.read())


def post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def stream_events(base: str, path: str) -> dict:
    """Follow the job's SSE stream; return the final `done` frame."""
    last = {}
    with urllib.request.urlopen(base + path, timeout=120) as stream:
        event, data = "", []
        for raw in stream:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                data.append(line[len("data: "):])
            elif not line and data:
                frame = json.loads("\n".join(data))
                print(f"  [{event}] {frame['records']} trace records, "
                      f"workers: {', '.join(frame['workers'])}")
                last = frame
                event, data = "", []
    return last


def main() -> None:
    grid = {
        "archs": ["floret", "siam", "kite"],
        "sizes": [16],
        "workloads": ["uniform", "transpose"],
        "seeds": [0, 1, 2],
        "tag": "served",
    }

    with tempfile.TemporaryDirectory() as tmp:
        # 1. The service: ThreadingHTTPServer over a shared store.
        # `python -m repro.svc serve --store DIR` runs the same thing.
        service = start_service(Path(tmp) / "store", workers=2)
        threading.Thread(target=service.serve_forever,
                         daemon=True).start()
        base = service.url
        print(f"service: {base} "
              f"(healthz ok: {get(base, '/v1/healthz')['ok']})\n")

        # 2. Submit a sweep and poll its progress.
        job = post(base, "/v1/sweeps", {
            "grid": grid, "evaluator": "evaluate_comm_case",
        })
        print(f"submitted {job['job']}: {job['total']} cases on "
              f"{job['workers']} in-process workers")
        while True:
            progress = get(base, job["status_url"])
            eta = progress["eta_s"]
            print(f"  {progress['done']}/{progress['total']} done"
                  + (f", eta {eta:.1f}s" if eta else ""))
            if progress["state"] == "done":
                break
            time.sleep(0.25)

        # 3. The SSE stream carries the same dict `report --json`
        # prints -- the final frame is the finished job's report.
        print("\nstreaming events:")
        final = stream_events(base, job["events_url"])
        slowest = final["slowest_cases"][0]
        print(f"  slowest case: {slowest['case']} "
              f"({slowest['dur_s'] * 1e3:.1f} ms)")

        # 4. Query the store: filters + aggregates + pivot, all
        # server-side, paginated and deterministic.
        out = get(base, "/v1/results?tag=served&metric=energy_pj"
                        "&pivot=latency_cycles&limit=5")
        agg = out["aggregates"]["energy_pj"]
        print(f"\nqueried {out['total']} results "
              f"(page of {len(out['results'])}); total NoI energy "
              f"{agg['sum'] / 1e6:.2f} uJ over {agg['count']} cases")
        rows = out["pivot"]["rows"]
        archs = sorted(next(iter(rows.values())))
        print(format_table(
            ["pattern"] + archs,
            [[pattern] + [rows[pattern][a] for a in archs]
             for pattern in sorted(rows)],
            title="mean latency (cycles) by traffic pattern x NoI",
            float_format="{:.1f}",
        ))

        # 5. Warm replay: the same grid costs nothing the second time.
        rerun = post(base, "/v1/sweeps", {
            "grid": grid, "evaluator": "evaluate_comm_case",
        })
        while get(base, rerun["status_url"])["state"] != "done":
            time.sleep(0.05)
        replay = get(base, rerun["status_url"])
        print(f"\nre-POSTed the same grid: {replay['done']} done, "
              f"{replay['evaluated']} evaluated, "
              f"{replay['store_hits']} store hits")

        service.shutdown()
        service.server_close()


if __name__ == "__main__":
    main()
