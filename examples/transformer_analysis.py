#!/usr/bin/env python
"""Why NVM PIM struggles with Transformers (paper Section IV).

Analyses BERT-family encoder stacks: which kernels are PIM-friendly
(static weights: projections + feed-forward) vs PIM-hostile (dynamic
activation-x-activation matmuls in attention), how big the intermediate
matrices are relative to weights, and how the static FF chain would map
along an SFC like any DNN.

Run:  python examples/transformer_analysis.py
"""

from __future__ import annotations

from repro.eval.report import format_table
from repro.workloads.transformer import (
    BERT_BASE,
    BERT_LARGE,
    BERT_TINY,
    KernelClass,
    encoder_kernels,
    ff_block_chain,
    pim_suitability,
    storage_report,
)


def main() -> None:
    configs = (BERT_TINY, BERT_BASE, BERT_LARGE)

    print("Per-encoder-block kernel inventory (BERT-Base):\n")
    rows = []
    for kernel in encoder_kernels(BERT_BASE):
        rows.append(
            (
                kernel.name,
                kernel.kind.value,
                kernel.weight_elements,
                kernel.intermediate_elements,
                kernel.macs / 1e6,
            )
        )
    print(format_table(
        ["kernel", "class", "weights", "intermediates", "MMACs"],
        rows,
    ))

    print("\nStack-level storage (paper: 8.98x BERT-Base, 2.06x BERT-Tiny):\n")
    rows = []
    for cfg in configs:
        report = storage_report(cfg)
        suit = pim_suitability(cfg)
        rows.append(
            (
                cfg.name,
                report.weight_elements / 1e6,
                report.intermediate_elements / 1e6,
                report.intermediate_to_weight_ratio,
                suit["dynamic_fraction"],
            )
        )
    print(format_table(
        ["config", "weights (M el)", "intermediates (M el)",
         "ratio", "dynamic MAC frac"],
        rows,
    ))

    print("\nThe PIM-friendly FF chain (maps along an SFC like a DNN):")
    chain = ff_block_chain(BERT_BASE)
    total = sum(w for _n, w in chain)
    print(f"  {len(chain)} static FC layers, {total / 1e6:.1f}M weights "
          f"-> contiguous SFC mapping, data flows i -> i+1")
    print(f"  first links of the chain: "
          f"{' -> '.join(name for name, _ in chain[:4])} ...")

    print("\nConclusion (paper Section IV): attention kernels need "
          "SRAM/tensor-core modules;\nthe SFC macro hosts the static "
          "FF/projection weights -- a heterogeneous system.")


if __name__ == "__main__":
    main()
