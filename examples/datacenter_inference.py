#!/usr/bin/env python
"""Datacenter-scale concurrent inference: Floret vs baseline NoIs.

Reproduces the paper's Section II evaluation loop on one Table II mix:
schedule a queue of concurrent DNN inference tasks on the 100-chiplet
system under four interconnects (Floret, SIAM mesh, Kite torus, SWAP
small-world) and compare NoI latency, energy and utilisation.

Run:  python examples/datacenter_inference.py [WL1..WL5]
"""

from __future__ import annotations

import sys

from repro import ContiguousMapper, GreedyMapper, SystemScheduler
from repro.core.floret import build_floret
from repro.eval.report import format_table
from repro.noi import build_kite, build_mesh, build_swap
from repro.workloads import mix_by_name


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "WL1"
    mix = mix_by_name(mix_name)
    tasks = mix.tasks()
    print(f"Mix {mix.name}: {mix.num_tasks} concurrent DNN tasks, "
          f"{mix.total_params_billions():.2f}B parameters total\n")

    design = build_floret(100, 6)
    systems = [
        ("floret", design.topology,
         ContiguousMapper(design.allocation_order, design.topology)),
        ("siam", build_mesh(100), None),
        ("kite", build_kite(100), None),
        ("swap", build_swap(100), None),
    ]

    rows = []
    results = {}
    for name, topology, mapper in systems:
        if mapper is None:
            mapper = GreedyMapper(topology)
        result = SystemScheduler(topology, mapper).run(tasks)
        results[name] = result
        rows.append(
            (
                name,
                result.mean_packet_latency,
                result.total_noi_energy_pj / 1e6,
                result.utilization,
                result.makespan_cycles,
            )
        )
    print(format_table(
        ["arch", "pkt latency (cyc)", "NoI energy (uJ)",
         "utilization", "makespan (cyc)"],
        rows,
        title=f"{mix.name} on 100 chiplets",
    ))

    base = results["floret"]
    print("\nNormalised to Floret (paper Figs. 3 and 5):")
    for name in ("siam", "kite", "swap"):
        r = results[name]
        print(f"  {name:>6s}: latency "
              f"{r.mean_packet_latency / base.mean_packet_latency:.2f}x, "
              f"energy "
              f"{r.total_noi_energy_pj / base.total_noi_energy_pj:.2f}x")


if __name__ == "__main__":
    main()
