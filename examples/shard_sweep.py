#!/usr/bin/env python
"""Distributed sweep: two local shard workers draining one grid.

Demonstrates the shard-execution subsystem end to end, entirely on one
machine (the same commands work across hosts sharing a filesystem):

1. define a communication-sweep grid as a `GridSpec` (JSON-portable,
   so every worker and the coordinator mean the same cases),
2. launch two `python -m repro.eval.shard worker` subprocesses with
   shards 0/2 and 1/2 sharing one store directory,
3. tail the store until the grid completes, and
4. merge: reconstruct the exact single-host streaming aggregates from
   whatever mix of workers produced the results.

Run:  python examples/shard_sweep.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import repro
from repro.eval import (
    GridSpec,
    ResultStore,
    RunningPivot,
    RunningStats,
    format_shard_progress,
    format_table,
    merge_stream,
    wait_for_cases,
)
from repro.eval.sweeps import evaluate_comm_case

WORKERS = 2


def launch_worker(store: Path, grid_json: str, shard: str,
                  report: Path) -> subprocess.Popen:
    """One shard worker subprocess (what you would run per host)."""
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.eval.shard", "worker",
            "--store", str(store), "--grid", grid_json,
            "--evaluator", "evaluate_comm_case",
            "--shard", shard, "--report", str(report),
        ],
        env=env,
    )


def main() -> None:
    grid = GridSpec(
        archs=("floret", "siam", "kite", "swap"),
        sizes=(36,),
        workloads=("uniform", "hotspot", "transpose"),
        seeds=(0, 1, 2, 3),
    )
    cases = grid.cases()
    print(f"grid: {len(cases)} cases "
          f"({len(grid.archs)} archs x {len(grid.workloads)} patterns "
          f"x {len(grid.seeds)} seeds)\n")

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "results"

        # 2. Two workers, each owning half the grid (deterministic
        # hash partition) and ready to steal the other half if its
        # owner dies.
        procs = [
            launch_worker(store_dir, grid.to_json(), f"{i}/{WORKERS}",
                          Path(tmp) / f"worker-{i}.json")
            for i in range(WORKERS)
        ]

        # 3. The coordinator tails the shared store.
        wait_for_cases(
            ResultStore(store_dir), evaluate_comm_case, cases,
            timeout_s=300,
            on_progress=lambda done, total: print(
                "\r" + format_shard_progress(done, total), end="",
                flush=True,
            ),
        )
        print()
        for proc in procs:
            assert proc.wait(timeout=60) == 0

        # 4. Merge: bit-identical to a single-host streaming run.
        pivot = RunningPivot("latency_cycles")
        energy = RunningStats("energy_pj")
        outcome = merge_stream(
            ResultStore(store_dir), evaluate_comm_case, cases,
            (pivot, energy),
        )
        print(f"\nmerged {outcome.total} cases "
              f"({outcome.store_hits} from the shared store, "
              f"{outcome.evaluated} evaluated by the coordinator)\n")
        table = pivot.table()
        archs = sorted({c.arch for c in cases})
        print(format_table(
            ["pattern"] + archs,
            [[pattern] + [table[pattern][a] for a in archs]
             for pattern in sorted(table)],
            title="mean latency (cycles) by traffic pattern x NoI",
            float_format="{:.1f}",
        ))
        print(f"\ntotal NoI energy: {energy.sum / 1e6:.2f} uJ "
              f"over {energy.count} cases")


if __name__ == "__main__":
    main()
