#!/usr/bin/env python
"""Joint performance-thermal mapping on a 3D PIM stack (Section III).

Builds the 100-PE, 4-tier 3D SFC NoC, maps ResNet-34 two ways --
performance-only (the Floret SFC prefix, starting at the bottom tier)
and via the NSGA-II joint optimisation -- then compares EDP, peak
temperature, bottom-tier hotspots and ReRAM inference accuracy.

Run:  python examples/thermal_aware_3d.py [model] [dataset]
"""

from __future__ import annotations

import sys

from repro import MappingProblem, optimize_mapping
from repro.noc3d import build_floret_3d
from repro.pim import assess
from repro.thermal import analyze_tier, render_tier_ascii
from repro.thermal.power import weight_fractions_per_pe
from repro.workloads import build_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "resnet34"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "imagenet"
    model = build_model(model_name, dataset)

    design = build_floret_3d(num_pes=100, tiers=4)
    problem = MappingProblem(design, model)
    print(f"{model.name}/{dataset}: {model.params_millions():.1f}M params "
          f"spread over {problem.plan.num_chiplets} of 100 PEs "
          f"({problem.spec.weight_capacity // 1024}K weights per PE)\n")

    print("Running NSGA-II (EDP vs peak temperature)...")
    result = optimize_mapping(problem, population_size=24, generations=12)
    print(f"  {result.evaluations} mapping evaluations, "
          f"{len(result.pareto_front)} Pareto-optimal designs\n")

    candidates = (
        ("Floret-3D (performance-only)", result.performance_only),
        ("joint perf-thermal (MOO knee)", result.joint),
    )
    maps = {}
    for label, cand in candidates:
        thermal = problem.thermal_report(cand.chiplet_ids)
        fractions = weight_fractions_per_pe(
            100, problem.plan, cand.chiplet_ids
        )
        accuracy = assess(model.name, thermal.temperatures_k, fractions)
        tier = analyze_tier(thermal, design.grid, tier=0, label=label)
        maps[label] = tier.tier_map_k
        print(f"{label}:")
        print(f"  EDP            : {cand.edp:.3e} pJ x cycles")
        print(f"  peak temp      : {cand.peak_k:.1f} K")
        print(f"  bottom-tier hotspots (>330 K): {tier.hotspot_pes}")
        print(f"  accuracy       : {accuracy.baseline_pct:.1f}% -> "
              f"{accuracy.degraded_pct:.1f}% "
              f"(-{accuracy.drop_pct:.1f} pp)\n")

    print(f"Peak-temperature reduction: {result.peak_reduction_k:.1f} K "
          f"(paper: ~13 K avg, 17 K for ResNet-34)")
    print(f"EDP overhead of joint design: "
          f"{(result.edp_overhead - 1) * 100:.1f}%\n")

    low = min(m.min() for m in maps.values())
    high = max(m.max() for m in maps.values())
    print(f"Bottom-tier heat maps (shared scale {low:.0f}..{high:.0f} K, "
          f"darker = hotter), paper Fig. 7:")
    for label, tier_map in maps.items():
        print(f"\n  {label}:")
        for line in render_tier_ascii(tier_map, low_k=low,
                                      high_k=high).split("\n"):
            print(f"    {line}")


if __name__ == "__main__":
    main()
