"""Section IV: transformer storage analysis + ResNet skip traffic.

Two quantitative claims:

* BERT intermediate matrices dwarf static weight storage (paper: 8.98x
  for BERT-Base, 2.06x for BERT-Tiny), making NVM PIM unsuitable for
  attention kernels.  Our kernel inventory reproduces the shape
  (Base > Tiny > 1); the paper's absolute accounting is not public.
* ResNet-34 skip connections carry ~19% of propagated activations and
  linear activations are ~4.5x larger.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import (
    exp_sec2_skip_traffic,
    exp_sec4_transformer,
    format_table,
)


def test_sec4_transformer_storage(benchmark):
    rows = run_once(benchmark, exp_sec4_transformer)
    table = format_table(
        ["config", "weights (el)", "intermediates (el)",
         "ratio", "paper", "dyn-MAC frac"],
        [
            (r.config_name, r.weight_elements, r.intermediate_elements,
             r.ratio, r.paper_ratio or "-", r.dynamic_mac_fraction)
            for r in rows
        ],
        title="Section IV: BERT intermediate-to-weight storage",
    )
    print()
    print(table)
    by_name = {r.config_name: r for r in rows}
    # Shape: intermediates exceed weights for Base, Base >> Tiny.
    assert by_name["bert-base"].ratio > by_name["bert-tiny"].ratio
    assert by_name["bert-base"].ratio > 1.0


def test_sec2_resnet34_skip_traffic(benchmark):
    rows = run_once(benchmark, exp_sec2_skip_traffic)
    row = rows[0]
    print(f"\nResNet-34 skip fraction: {row.skip_fraction:.1%} "
          f"(paper ~19%); linear/skip ratio {row.linear_to_skip_ratio:.2f} "
          f"(paper ~4.5x)")
    assert 0.15 < row.skip_fraction < 0.25
    assert 3.5 < row.linear_to_skip_ratio < 5.5
