"""Cross-check: analytic latency model vs packet-level simulation.

The analytic model (Fig. 3/5 numbers) ignores queueing; the
discrete-event simulator routes every packet with FIFO link contention.
This bench validates that the two agree on uncongested traffic and that
contention only increases latency -- i.e. the analytic numbers are a
sound lower bound with matching architecture ordering.

Like the other figure benches it rides ``SweepRunner`` with a
``ResultStore`` (``evaluate_sim_crosscheck_case``): simulator runs are
cached on disk and a re-run replays from the store with zero
evaluations, which the bench asserts.  ``REPRO_STORE_DIR`` points the
store at a persistent directory; unset, a temp directory is used.
"""

from __future__ import annotations

import os

from _bench_utils import run_once

from repro.eval import (
    ResultStore,
    SweepRunner,
    evaluate_sim_crosscheck_case,
    format_table,
    sweep_grid,
)

ARCHS = ("floret", "siam", "kite")


def _cases():
    # A contiguous layer-chain traffic pattern: i -> i+1 transfers.
    return sweep_grid(archs=ARCHS, sizes=(36,), workloads=("chain",))


def _store_root(tmp_path_factory):
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return env
    return tmp_path_factory.mktemp("sim-crosscheck-store")


def _run(root):
    cases = _cases()
    cold = SweepRunner(
        evaluate_sim_crosscheck_case, workers=1, store=ResultStore(root)
    ).run(cases)
    assert not cold.failures, cold.failures
    # Resumability: a second runner on the same directory answers every
    # simulator run from the store.
    warm = SweepRunner(
        evaluate_sim_crosscheck_case, workers=1, store=ResultStore(root)
    ).run(cases)
    assert not warm.failures, warm.failures
    assert warm.store_hits == len(cases)
    assert warm.evaluated == 0
    for a, b in zip(cold.results, warm.results):
        assert a.metrics == b.metrics, a.case.case_id
    return cold


def test_simulator_crosscheck(benchmark, tmp_path_factory):
    outcome = run_once(benchmark, _run, _store_root(tmp_path_factory))
    rows = [
        (r.case.arch,
         r.metrics["analytic_total_cycles"],
         r.metrics["sim_total_cycles"],
         r.metrics["sim_mean_packet_latency"])
        for r in outcome.results
    ]
    table = format_table(
        ["arch", "analytic total (cyc)", "simulated total (cyc)",
         "sim mean pkt (cyc)"],
        rows,
        title="Analytic vs simulated latency, disjoint chain traffic",
    )
    print()
    print(table)
    for name, analytic, sim_total, _mean in rows:
        # Disjoint single-hop-ish transfers: simulation should be close
        # to the analytic value and never below it by more than rounding.
        assert sim_total >= 0.9 * analytic
        assert sim_total <= 2.0 * analytic, f"{name} diverged"
    # Architecture ordering agrees between the two models.
    analytic_order = sorted(rows, key=lambda r: r[1])
    sim_order = sorted(rows, key=lambda r: r[2])
    assert [r[0] for r in analytic_order] == [r[0] for r in sim_order]
