"""Cross-check: analytic latency model vs packet-level simulation.

The analytic model (Fig. 3/5 numbers) ignores queueing; the
discrete-event simulator routes every packet with FIFO link contention.
This bench validates that the two agree on uncongested traffic and that
contention only increases latency -- i.e. the analytic numbers are a
sound lower bound with matching architecture ordering.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.core.floret import build_floret
from repro.eval import format_table
from repro.net import simulate_transfers, transfer_latency_cycles
from repro.noi import build_kite, build_mesh


def _crosscheck():
    rows = []
    for name, topo in (
        ("floret", build_floret(36, 4).topology),
        ("siam", build_mesh(36)),
        ("kite", build_kite(36)),
    ):
        # A contiguous layer-chain traffic pattern: i -> i+1 transfers.
        transfers = [(i, i + 1, 512) for i in range(0, 30, 2)]
        analytic = sum(
            transfer_latency_cycles(topo, s, d, b) for s, d, b in transfers
        )
        sim = simulate_transfers(topo, transfers)
        sim_total = sum(sim.message_completion.values())
        rows.append((name, analytic, sim_total,
                     sim.mean_packet_latency))
    return rows


def test_simulator_crosscheck(benchmark):
    rows = run_once(benchmark, _crosscheck)
    table = format_table(
        ["arch", "analytic total (cyc)", "simulated total (cyc)",
         "sim mean pkt (cyc)"],
        rows,
        title="Analytic vs simulated latency, disjoint chain traffic",
    )
    print()
    print(table)
    for name, analytic, sim_total, _mean in rows:
        # Disjoint single-hop-ish transfers: simulation should be close
        # to the analytic value and never below it by more than rounding.
        assert sim_total >= 0.9 * analytic
        assert sim_total <= 2.0 * analytic, f"{name} diverged"
    # Architecture ordering agrees between the two models.
    analytic_order = sorted(rows, key=lambda r: r[1])
    sim_order = sorted(rows, key=lambda r: r[2])
    assert [r[0] for r in analytic_order] == [r[0] for r in sim_order]
