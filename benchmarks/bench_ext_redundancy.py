"""Extension: inherent redundancy of multiple SFCs.

Paper: "Instead of one monolithic SFC, we use multiple SFCs to introduce
inherent redundancy in the system."  Quantified as the fraction of
single-link failures the NoI survives (bridge-link census).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import format_table
from repro.eval.extensions import exp_redundancy


def test_ext_redundancy(benchmark):
    rows = run_once(benchmark, exp_redundancy)
    print()
    print(format_table(
        ["design", "links", "single points of failure",
         "survival fraction"],
        [
            (r.label, r.num_links, r.disconnecting_links,
             r.survival_fraction)
            for r in rows
        ],
        title="Single-link-failure tolerance, 100 chiplets",
    ))
    by_label = {r.label: r for r in rows}
    # A monolithic chain dies on every cut; the 6-petal Floret survives
    # a meaningful share thanks to the top-level tail->head links.
    assert by_label["floret-1sfc"].survival_fraction == 0.0
    assert by_label["floret-6sfc"].survival_fraction > 0.5
    # The mesh is the (expensive) gold standard; the 6-petal Floret gets
    # there with almost half the links.
    assert (
        by_label["siam"].survival_fraction
        >= by_label["floret-6sfc"].survival_fraction
    )
