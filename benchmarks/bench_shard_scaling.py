"""Shard-scaling gate: a worker fleet equals one host, only faster.

Acceptance gate for the distributed shard-execution subsystem
(``repro/eval/shard.py``).  One real load-sweep grid is drained three
ways, all against ``python -m repro.eval.shard`` worker subprocesses
sharing a store directory:

1. **Single-host reference**: a one-process
   :class:`~repro.eval.stream.StreamingSweepRunner` run whose
   aggregates are the pinned oracle.
2. **1-worker vs 3-worker fleets**: per-worker ``DrainReport``\\ s must
   show *zero duplicate evaluations* (the per-worker evaluated-key
   sets are disjoint and exactly cover the grid) and the coordinator
   :func:`~repro.eval.shard.merge_stream` must reproduce the reference
   aggregates **bit-identically**.  The fleet's drain wall-clock must
   beat the single worker's by the scaling floor -- a ratio of two
   same-host measurements, in the spirit of the repo's other perf
   gates.  (The ratio assertion needs real parallelism, so it arms
   only when the host has >= 3 CPUs -- always true on the CI runners.)
   The 3-worker fleet also runs **traced** (``--trace``): the merged
   per-worker JSONL trace files (``repro.obs``) must reconstruct each
   worker's DrainReport numbers -- evaluated/stolen/store-hit counts --
   bit-identically, proving the observability layer reports what the
   fleet actually did.  With ``REPRO_TRACE`` set the traces land under
   it (the sweep-results artifact); otherwise in the bench tmp dir.
3. **Kill-recovery**: a worker is SIGKILLed mid-drain -- plus a live
   claim planted on a missing case, simulating the kill landing
   mid-evaluation -- and a late-started survivor must wait out the
   lease TTL, reap the orphaned claim, finish the grid, and still
   merge bit-identically with no case evaluated twice.

Every run appends its measured scaling ratio to
``ratio-history.jsonl`` under ``REPRO_STORE_DIR`` (the sweep-results
artifact) and warns -- never fails -- on >20% drift below the trailing
median, like the other ratio gates.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

from _bench_utils import quick_mode, run_once

import repro
from repro.eval import (
    GridSpec,
    ResultStore,
    RunningPivot,
    RunningStats,
    StreamingSweepRunner,
    append_ratio_history,
    format_table,
    load_ratio_history,
    merge_stream,
    ratio_drift_warning,
)
from repro.eval.experiments import evaluate_load_sweep_case
from repro.eval.store import case_key, evaluator_fingerprint

EVALUATOR = "evaluate_load_sweep_case"
WORKERS = 3
#: Lease TTL for the kill-recovery phase: long enough that no healthy
#: evaluation outlives it, short enough that reaping the planted
#: orphan claim does not dominate the phase.
RECOVERY_TTL_S = 1.5
SCALING_FLOOR = 1.25


def _grid() -> GridSpec:
    """A real load-sweep grid of cheap-to-build topologies.

    ``swap`` is deliberately absent: its 64-chiplet build costs ~10
    case evaluations, and every *fresh worker process* pays topology
    construction again, so an expensive build is a fixed per-worker
    cost that would measure process startup instead of drain scaling.
    """
    if quick_mode():
        return GridSpec(
            archs=("siam", "kite"), sizes=(64,),
            workloads=("uniform@0.05:w256+1024", "uniform@0.07:w256+1024"),
            seeds=(0, 1, 2, 3),
        )
    return GridSpec(
        archs=("siam", "kite", "floret"), sizes=(64,),
        workloads=("uniform@0.05:w256+1024", "uniform@0.07:w256+1024"),
        seeds=(0, 1, 2, 3),
    )


def _aggregators():
    return (RunningPivot("steady_mean_latency"),
            RunningStats("steady_throughput"))


def _assert_aggregates_identical(reference, other, label):
    ref_pivot, ref_stats = reference
    got_pivot, got_stats = other
    assert got_pivot.table() == ref_pivot.table(), label
    assert got_stats.count == ref_stats.count, label
    assert got_stats.sum == ref_stats.sum, label
    assert got_stats.min == ref_stats.min, label
    assert got_stats.max == ref_stats.max, label


def _spawn_worker(store, grid_json, shard, report_path, *,
                  lease_ttl=30.0, poll=0.02, trace=None):
    """Launch one ``python -m repro.eval.shard worker`` subprocess."""
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable, "-m", "repro.eval.shard", "worker",
        "--store", str(store), "--grid", grid_json,
        "--evaluator", EVALUATOR, "--shard", shard,
        "--lease-ttl", str(lease_ttl), "--poll", str(poll),
        "--deadline", "300", "--report", str(report_path),
    ]
    if trace is not None:
        argv += ["--trace", str(trace)]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _run_fleet(store, grid_json, count, tmp, label, *, lease_ttl=30.0,
               trace=None):
    """Run ``count`` concurrent workers to completion; return reports."""
    procs = []
    for i in range(count):
        report_path = tmp / f"report-{label}-{i}.json"
        procs.append((report_path, _spawn_worker(
            store, grid_json, f"{i}/{count}", report_path,
            lease_ttl=lease_ttl, trace=trace,
        )))
    reports = []
    for report_path, proc in procs:
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, f"{label} worker failed:\n{out}"
        reports.append(json.loads(report_path.read_text()))
    return reports


def _assert_trace_matches_reports(trace_dir, fleet_reports):
    """The traced fleet's JSONL must reconstruct every DrainReport.

    ``repro.obs`` merges the per-worker trace files and tallies the
    ``drain_case`` spans; those tallies must be bit-identical to the
    numbers each worker reported about itself -- evaluated (own-slice
    plus stolen), stolen alone, and store hits.
    """
    from repro.obs import merge_traces, worker_case_counts

    records = merge_traces(trace_dir)
    counts = worker_case_counts(records)
    for report in fleet_reports:
        per = counts.get(report["worker"], {})
        evaluated = per.get("evaluated", 0) + per.get("stolen", 0)
        assert evaluated == len(report["evaluated_keys"]), (
            f"trace shows {evaluated} evaluations for "
            f"{report['worker']}, DrainReport says "
            f"{len(report['evaluated_keys'])}"
        )
        assert per.get("stolen", 0) == report["stolen"], (
            f"trace/report stolen mismatch for {report['worker']}"
        )
        assert per.get("hit", 0) == report["store_hits"], (
            f"trace/report store-hit mismatch for {report['worker']}"
        )
    return records


def _assert_no_duplicates(evaluated_key_sets, all_keys, label):
    union = set()
    total = 0
    for keys in evaluated_key_sets:
        union.update(keys)
        total += len(keys)
    assert total == len(union), (
        f"{label}: {total - len(union)} duplicate evaluations"
    )
    assert union == set(all_keys), (
        f"{label}: evaluated keys do not cover the grid "
        f"(missing {len(set(all_keys) - union)}, "
        f"extra {len(union - set(all_keys))})"
    )


def _kill_recovery(tmp, grid_json, cases, keys, reference_aggs):
    """SIGKILL a worker mid-drain; a survivor must finish via leases."""
    store_root = tmp / "store-recovery"
    victim_report = tmp / "report-victim.json"
    victim = _spawn_worker(store_root, grid_json, f"0/{WORKERS}",
                           victim_report, lease_ttl=RECOVERY_TTL_S)
    store = ResultStore(store_root)
    deadline = time.perf_counter() + 120
    while not len(store):
        assert time.perf_counter() < deadline, "victim produced nothing"
        time.sleep(0.01)
    victim.send_signal(signal.SIGKILL)
    victim.communicate()

    snapshot = set(store.keys())
    missing = [k for k in keys if k not in snapshot]
    assert missing, "victim finished before the kill; grid too small"
    # Simulate the kill landing mid-evaluation: a live claim on a
    # missing case that the survivor must wait out and reap.
    orphaned = missing[0]
    store.claims_root.mkdir(parents=True, exist_ok=True)
    (store.claims_root / f"{orphaned}.lease").write_text(
        '{"worker":"killed-mid-case"}', encoding="utf-8"
    )

    survivor_reports = _run_fleet(store_root, grid_json, 1, tmp,
                                  "survivor", lease_ttl=RECOVERY_TTL_S)
    # Survivors run whole-grid specs; rename their report label so the
    # duplicate check below reads naturally.
    _assert_no_duplicates(
        [snapshot] + [r["evaluated_keys"] for r in survivor_reports],
        keys, "kill-recovery",
    )
    assert orphaned in set(survivor_reports[0]["evaluated_keys"]), (
        "survivor never reaped the planted orphan claim"
    )
    recovery_aggs = _aggregators()
    merged = merge_stream(ResultStore(store_root),
                          evaluate_load_sweep_case, cases, recovery_aggs)
    assert merged.store_hits == len(cases)
    assert not merged.failures, merged.failures
    _assert_aggregates_identical(reference_aggs, recovery_aggs,
                                 "kill-recovery merge")
    return len(snapshot), len(survivor_reports[0]["evaluated_keys"])


def _run(tmp):
    grid = _grid()
    cases = grid.cases()
    grid_json = grid.to_json()
    fingerprint = evaluator_fingerprint(evaluate_load_sweep_case)
    keys = [case_key(c, fingerprint) for c in cases]

    # 1. Single-host streaming reference (the pinned oracle).
    reference_aggs = _aggregators()
    reference = StreamingSweepRunner(
        evaluate_load_sweep_case, workers=1,
        store=ResultStore(tmp / "store-reference"),
    ).run_stream(cases, reference_aggs)
    assert not reference.failures, reference.failures

    # 2a. One worker subprocess draining the whole grid.
    single_reports = _run_fleet(tmp / "store-single", grid_json, 1, tmp,
                                "single")
    _assert_no_duplicates([single_reports[0]["evaluated_keys"]], keys,
                          "single worker")

    # 2b. Three concurrent worker subprocesses sharing one store --
    # traced, so the merged JSONL must reconstruct every DrainReport.
    trace_env = os.environ.get("REPRO_TRACE")
    fleet_trace = (Path(trace_env) if trace_env else tmp) / "shard-fleet"
    fleet_store = tmp / "store-fleet"
    fleet_reports = _run_fleet(fleet_store, grid_json, WORKERS, tmp,
                               "fleet", trace=fleet_trace)
    _assert_no_duplicates(
        [r["evaluated_keys"] for r in fleet_reports], keys, "fleet"
    )
    trace_records = _assert_trace_matches_reports(fleet_trace,
                                                  fleet_reports)
    fleet_aggs = _aggregators()
    merged = merge_stream(ResultStore(fleet_store),
                          evaluate_load_sweep_case, cases, fleet_aggs)
    assert merged.store_hits == len(cases)
    assert merged.evaluated == 0
    _assert_aggregates_identical(reference_aggs, fleet_aggs, "fleet merge")

    # 3. Crash recovery through lease expiry.
    before_kill, recovered = _kill_recovery(tmp, grid_json, cases, keys,
                                            reference_aggs)

    single_s = single_reports[0]["elapsed_s"]
    fleet_s = max(r["elapsed_s"] for r in fleet_reports)
    return {
        "cases": len(cases),
        "reference": reference,
        "single_s": single_s,
        "fleet_s": fleet_s,
        "fleet_reports": fleet_reports,
        "trace_records": trace_records,
        "speedup": single_s / max(fleet_s, 1e-9),
        "before_kill": before_kill,
        "recovered": recovered,
    }


def test_shard_scaling(benchmark, tmp_path):
    out = run_once(benchmark, _run, tmp_path)

    rows = [
        ("single worker", out["cases"], out["cases"], 0, out["single_s"]),
    ] + [
        (f"fleet worker {i}", out["cases"], len(r["evaluated_keys"]),
         r["stolen"], r["elapsed_s"])
        for i, r in enumerate(out["fleet_reports"])
    ]
    print()
    print(format_table(
        ["drain", "grid", "evaluated", "stolen", "elapsed (s)"],
        rows,
        title=f"Sharded drain over {out['cases']} load-sweep cases "
              f"({WORKERS}-worker fleet vs one worker, shared store)",
    ))
    print(
        f"fleet speedup {out['speedup']:.2f}x; kill-recovery: "
        f"{out['before_kill']} results survived the SIGKILL, survivor "
        f"re-evaluated {out['recovered']} (merge bit-identical)"
    )
    print(
        f"trace reconstruction: {len(out['trace_records'])} records "
        f"from {WORKERS} worker trace files match every DrainReport"
    )

    store_dir = os.environ.get("REPRO_STORE_DIR")
    if store_dir:
        history_path = Path(store_dir) / "ratio-history.jsonl"
        prior = [
            rec for rec in load_ratio_history(history_path)
            if rec.get("bench") == "shard_scaling"
            and rec.get("quick") == quick_mode()
        ]
        drift = ratio_drift_warning(prior, out["speedup"], tolerance=0.2)
        if drift is not None:
            warnings.warn(f"shard-scaling drift watch: {drift}",
                          RuntimeWarning)
            print(f"WARNING: {drift}")
        append_ratio_history(history_path, {
            "bench": "shard_scaling",
            "quick": quick_mode(),
            "speedup": round(out["speedup"], 4),
            "cases": out["cases"],
            "workers": WORKERS,
            "unix_time": round(time.time(), 3),
        })

    cpus = os.cpu_count() or 1
    if cpus >= WORKERS:
        assert out["speedup"] >= SCALING_FLOOR, (
            f"{WORKERS}-worker fleet only {out['speedup']:.2f}x faster "
            f"than one worker (floor {SCALING_FLOOR}x) on {cpus} CPUs"
        )
    else:
        print(f"NOTE: scaling floor not asserted on {cpus} CPU(s); "
              f"the CI runners arm it")
