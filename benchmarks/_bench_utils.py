"""Shared benchmark helpers.

Kept in a plainly-named module instead of conftest.py: importing from
``conftest`` is ambiguous whenever more than one conftest.py directory
is on ``sys.path`` (it used to shadow the unit suite's helpers).

Heavy experiment drivers are timed with a single round (they are
deterministic end-to-end system evaluations, not microbenchmarks), and
each benchmark prints the regenerated table/figure rows so the paper
comparison is visible in the benchmark log.
"""

from __future__ import annotations

import os


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with one warm round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def quick_mode() -> bool:
    """Whether the CI smoke invocation asked for a reduced sweep."""
    return os.environ.get("REPRO_SWEEP_QUICK", "") not in ("", "0")


def mix_sweep_normalized(metric, *, mixes, num_chiplets=100, workers=4):
    """Sweep every (arch x mix) schedule and normalise ``metric`` to Floret.

    Shared driver of ``bench_fig3_latency`` and ``bench_fig5_energy``
    (identical sweep shape, different aggregated metric).  Returns
    ``{mix: {arch: value / floret_value}}``.  Cases are chunked one
    architecture per worker so each process reuses its cached topology
    and schedules.
    """
    from repro.eval import (
        ALL_ARCHS,
        SweepRunner,
        evaluate_mix_case,
        sweep_grid,
    )

    cases = sweep_grid(
        archs=ALL_ARCHS, sizes=(num_chiplets,), workloads=mixes
    )
    runner = SweepRunner(
        evaluate_mix_case, workers=workers, chunksize=len(mixes)
    )
    outcome = runner.run(cases)
    assert not outcome.failures, outcome.failures
    pivot = outcome.pivot(metric)
    return {
        mix: {a: v / by_arch["floret"] for a, v in by_arch.items()}
        for mix, by_arch in pivot.items()
    }
