"""Fig. 6(b): peak temperature, Floret-3D vs joint mapping.

Paper: performance-only mapping runs ~13 K hotter on average across
DNN1-DNN5 on the 100-PE 3D system.
"""

from __future__ import annotations

import statistics

from _bench_utils import run_once

from repro.eval import exp_fig6, format_table


def test_fig6b_peak_temperature(benchmark):
    rows = run_once(benchmark, exp_fig6)
    table = format_table(
        ["dnn", "model", "floret peak (K)", "joint peak (K)", "delta (K)"],
        [
            (r.dnn_id, r.model_name, r.floret_peak_k, r.joint_peak_k,
             r.peak_delta_k)
            for r in rows
        ],
        title="Fig. 6(b): peak temperature, 100-PE 3D system",
        float_format="{:.1f}",
    )
    print()
    print(table)
    mean_delta = statistics.mean(r.peak_delta_k for r in rows)
    print(f"\nmean peak-temperature delta: {mean_delta:.1f} K (paper ~13 K)")
    for r in rows:
        assert r.peak_delta_k >= 0.0, "joint design must not be hotter"
    # Meaningful cooling on average (paper: 13 K).
    assert mean_delta > 4.0
    # The deepest model benefits visibly.
    assert max(r.peak_delta_k for r in rows) > 8.0
