"""Fig. 7: bottom-tier thermal hotspots, ResNet-34 on 100 PEs.

Paper: performance-only (Floret) mapping shows ~17 K higher peak
temperature and more hotspots on the bottom tier than the joint
performance-thermal mapping.  The benchmark prints side-by-side ASCII
heat maps on a shared temperature scale.

Ported to the :class:`~repro.eval.sweeps.SweepRunner` path: the single
DNN10 case runs through ``evaluate_moo_case``, whose tier temperature
maps arrive as array payloads (the part of a result a
:class:`~repro.eval.store.ResultStore` persists as ``.npz``).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import SweepCase, SweepRunner, evaluate_moo_case
from repro.thermal import render_tier_ascii


def _sweep():
    case = SweepCase(arch="floret", num_chiplets=100, workload="DNN10",
                     tag="fig7")
    outcome = SweepRunner(evaluate_moo_case, workers=1).run([case])
    assert not outcome.failures, outcome.failures
    return outcome.results[0]


def test_fig7_hotspots(benchmark):
    result = run_once(benchmark, _sweep)
    metrics = result.metrics
    floret_map = result.arrays["floret_tier_map_k"]
    joint_map = result.arrays["joint_tier_map_k"]
    low = min(joint_map.min(), floret_map.min())
    high = max(joint_map.max(), floret_map.max())
    print()
    print("Fig. 7: bottom-tier heat maps (shared scale "
          f"{low:.1f}..{high:.1f} K; darker = hotter)")
    print(f"\n(a) Floret-3D, peak {metrics['floret_peak_k']:.1f} K, "
          f"{int(metrics['floret_hotspot_pes'])} hotspot PEs:")
    print(render_tier_ascii(floret_map, low_k=low, high_k=high))
    print(f"\n(b) joint perf-thermal, peak {metrics['joint_peak_k']:.1f} K, "
          f"{int(metrics['joint_hotspot_pes'])} hotspot PEs:")
    print(render_tier_ascii(joint_map, low_k=low, high_k=high))
    peak_delta = metrics["floret_peak_k"] - metrics["joint_peak_k"]
    print(f"\npeak delta: {peak_delta:.1f} K (paper ~17 K)")
    assert peak_delta > 4.0
    assert metrics["floret_hotspot_pes"] >= metrics["joint_hotspot_pes"]
