"""Fig. 7: bottom-tier thermal hotspots, ResNet-34 on 100 PEs.

Paper: performance-only (Floret) mapping shows ~17 K higher peak
temperature and more hotspots on the bottom tier than the joint
performance-thermal mapping.  The benchmark prints side-by-side ASCII
heat maps on a shared temperature scale.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import exp_fig7
from repro.thermal import render_tier_ascii


def test_fig7_hotspots(benchmark):
    result = run_once(benchmark, exp_fig7)
    low = min(result.joint_map.min(), result.floret_map.min())
    high = max(result.joint_map.max(), result.floret_map.max())
    print()
    print("Fig. 7: bottom-tier heat maps (shared scale "
          f"{low:.1f}..{high:.1f} K; darker = hotter)")
    print(f"\n(a) Floret-3D, peak {result.floret.peak_k:.1f} K, "
          f"{result.floret.hotspot_pes} hotspot PEs:")
    print(render_tier_ascii(result.floret_map, low_k=low, high_k=high))
    print(f"\n(b) joint perf-thermal, peak {result.joint.peak_k:.1f} K, "
          f"{result.joint.hotspot_pes} hotspot PEs:")
    print(render_tier_ascii(result.joint_map, low_k=low, high_k=high))
    print(f"\npeak delta: {result.peak_delta_k:.1f} K (paper ~17 K)")
    assert result.peak_delta_k > 4.0
    assert result.floret.hotspot_pes >= result.joint.hotspot_pes
