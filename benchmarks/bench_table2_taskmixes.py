"""Table II: concurrent DNN task mixes for the 100-chiplet system."""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import exp_table2, format_table


def test_table2_taskmixes(benchmark):
    rows = run_once(benchmark, exp_table2)
    assert len(rows) == 5
    table = format_table(
        ["mix", "tasks", "paper total (B)", "measured total (B)"],
        [
            (r.mix_name, r.num_tasks, r.paper_total_params_billions,
             r.measured_total_params_billions)
            for r in rows
        ],
        title="Table II: concurrent DNN task mixes",
    )
    print()
    print(table)
    for row in rows:
        assert row.num_tasks > 0
        assert row.measured_total_params_billions > 0
