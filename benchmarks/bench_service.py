"""Service load gate: warm queries are fast and never re-evaluate.

Acceptance gate for the HTTP sweep service (``repro/svc``).  One
in-process service is stood up over a fresh store and hit the way the
millions-of-users story says it will be:

1. **Cold sweep**: ``POST /v1/sweeps`` with a novel comm grid; the
   in-process worker pool drains it through the lease substrate.  The
   job must evaluate every case exactly once (zero duplicates across
   the pool's drain threads).
2. **Warm swarm**: N concurrent clients mix re-POSTs of the *same*
   grid (pure cache replay) with repeated ``/v1/results`` aggregate
   queries and progress/metrics reads.  Gates: every warm sweep
   performs **zero evaluations**, and the warm-query p99 latency stays
   under ``P99_FLOOR_S`` -- repeated queries over a quiescent store
   are dictionary reads, not file I/O, and the latency budget is how
   that shows up externally.

The cold-sweep vs warm-replay wall-clock ratio joins the drift-watched
``ratio-history.jsonl`` under ``REPRO_STORE_DIR`` (warn-only, like the
other ratio gates).  When ``REPRO_STORE_DIR`` is set the service store
itself lives underneath it, so the per-job trace directories
(``svc-store/svc-traces/<job>/``) ship inside the sweep-results
artifact.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
import urllib.request
import warnings
from pathlib import Path

from _bench_utils import quick_mode, run_once

from repro.eval import (
    append_ratio_history,
    format_table,
    load_ratio_history,
    ratio_drift_warning,
)
from repro.svc import start_service

#: Concurrent warm-phase clients.
CLIENTS = 4
#: Warm query iterations per client.
QUERIES_PER_CLIENT = 25
#: Warm re-POSTed sweeps per client.
SWEEPS_PER_CLIENT = 2
#: Hard gate on the warm /v1/results p99 (seconds).  Real values are
#: single-digit milliseconds; the floor absorbs CI-runner noise.
P99_FLOOR_S = 1.0

QUERY_PATHS = (
    "/v1/results?metric=latency_cycles,energy_pj&limit=20",
    "/v1/results?arch=siam&pivot=latency_cycles",
    "/v1/results?workload=uniform&metric=latency_cycles&offset=4&limit=4",
    "/v1/results?seed=0&metric=energy_pj",
)


def _grid() -> dict:
    if quick_mode():
        return {
            "archs": ["siam", "kite"], "sizes": [16],
            "workloads": ["uniform", "transpose"], "seeds": [0, 1],
            "tag": "svc-bench",
        }
    return {
        "archs": ["siam", "kite", "floret"], "sizes": [16, 36],
        "workloads": ["uniform", "transpose"], "seeds": [0, 1, 2, 3],
        "tag": "svc-bench",
    }


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return json.loads(response.read())


def _post(base, path, body):
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _run_sweep(base, grid):
    """POST the grid, wait for completion, return final progress."""
    job = _post(base, "/v1/sweeps", {
        "grid": grid, "evaluator": "evaluate_comm_case",
    })
    deadline = time.perf_counter() + 300
    while True:
        progress = _get(base, job["status_url"])
        if progress["state"] == "done":
            assert not progress["worker_errors"], progress["worker_errors"]
            assert progress["failed"] == 0, progress["failures"]
            return progress
        assert time.perf_counter() < deadline, "sweep never finished"
        time.sleep(0.02)


def _warm_client(base, grid, latencies, sweep_walls, evaluated):
    """One warm-phase client: cached sweeps + repeated queries."""
    for _ in range(SWEEPS_PER_CLIENT):
        t0 = time.perf_counter()
        progress = _run_sweep(base, grid)
        sweep_walls.append(time.perf_counter() - t0)
        evaluated.append(progress["evaluated"])
    for i in range(QUERIES_PER_CLIENT):
        path = QUERY_PATHS[i % len(QUERY_PATHS)]
        t0 = time.perf_counter()
        payload = _get(base, path)
        latencies.append(time.perf_counter() - t0)
        assert payload["total"] > 0
    latencies.append(_timed_get(base, "/v1/metrics"))
    latencies.append(_timed_get(base, "/v1/healthz"))


def _timed_get(base, path):
    t0 = time.perf_counter()
    _get(base, path)
    return time.perf_counter() - t0


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(int(q * (len(ordered) - 1) + 0.999999),
                       len(ordered) - 1)]


def _run(tmp):
    store_dir = os.environ.get("REPRO_STORE_DIR")
    root = (Path(store_dir) if store_dir else tmp) / "svc-store"
    # The bench owns this subdirectory; start cold even when a prior
    # local run left results behind.
    shutil.rmtree(root, ignore_errors=True)
    service = start_service(root, workers=2)
    server_thread = threading.Thread(
        target=service.serve_forever, daemon=True
    )
    server_thread.start()
    host, port = service.server_address[:2]
    base = f"http://{host}:{port}"
    grid = _grid()
    total = 1
    for axis in ("archs", "sizes", "workloads", "seeds"):
        total *= len(grid[axis])
    try:
        # 1. Cold sweep: every case evaluated exactly once.
        t0 = time.perf_counter()
        cold = _run_sweep(base, grid)
        cold_s = time.perf_counter() - t0
        assert cold["done"] == total
        assert cold["evaluated"] == total, (
            f"cold sweep evaluated {cold['evaluated']} of {total} "
            "(duplicate or missing evaluations)"
        )

        # 2. Warm swarm: concurrent cached sweeps + repeated queries.
        latencies: list = []
        sweep_walls: list = []
        evaluated: list = []
        clients = [
            threading.Thread(
                target=_warm_client,
                args=(base, grid, latencies, sweep_walls, evaluated),
            )
            for _ in range(CLIENTS)
        ]
        t0 = time.perf_counter()
        for client in clients:
            client.start()
        for client in clients:
            client.join()
        warm_phase_s = time.perf_counter() - t0
    finally:
        service.shutdown()
        service.server_close()

    return {
        "total": total,
        "cold_s": cold_s,
        "warm_phase_s": warm_phase_s,
        "warm_sweeps": len(sweep_walls),
        "warm_sweep_mean_s": sum(sweep_walls) / len(sweep_walls),
        "warm_evaluated": sum(evaluated),
        "queries": len(latencies),
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "replay_speedup": cold_s / max(
            sum(sweep_walls) / len(sweep_walls), 1e-9
        ),
    }


def test_service_load(benchmark, tmp_path):
    out = run_once(benchmark, _run, tmp_path)

    print()
    print(format_table(
        ["phase", "requests", "wall (s)", "p50 (s)", "p99 (s)"],
        [
            ("cold sweep", 1, out["cold_s"], "-", "-"),
            (f"warm swarm x{CLIENTS}", out["queries"],
             out["warm_phase_s"], out["p50_s"], out["p99_s"]),
        ],
        title=f"Sweep service over {out['total']} comm cases "
              f"({CLIENTS} concurrent clients, shared store)",
        float_format="{:.4f}",
    ))
    print(
        f"warm replay: {out['warm_sweeps']} re-POSTed sweeps, "
        f"{out['warm_evaluated']} evaluations (must be 0), "
        f"replay speedup {out['replay_speedup']:.1f}x"
    )

    store_dir = os.environ.get("REPRO_STORE_DIR")
    if store_dir:
        history_path = Path(store_dir) / "ratio-history.jsonl"
        prior = [
            record for record in load_ratio_history(history_path)
            if record.get("bench") == "service"
            and record.get("quick") == quick_mode()
        ]
        drift = ratio_drift_warning(prior, out["replay_speedup"],
                                    tolerance=0.2)
        if drift is not None:
            warnings.warn(f"service drift watch: {drift}", RuntimeWarning)
            print(f"WARNING: {drift}")
        append_ratio_history(history_path, {
            "bench": "service",
            "quick": quick_mode(),
            "speedup": round(out["replay_speedup"], 4),
            "warm_p99_s": round(out["p99_s"], 6),
            "cases": out["total"],
            "clients": CLIENTS,
            "unix_time": round(time.time(), 3),
        })

    # Hard gates: cached work is free, and it is fast.
    assert out["warm_evaluated"] == 0, (
        f"warm sweeps re-evaluated {out['warm_evaluated']} cases; "
        "cached cases must never be recomputed"
    )
    assert out["p99_s"] < P99_FLOOR_S, (
        f"warm-query p99 {out['p99_s']:.3f}s over the "
        f"{P99_FLOOR_S}s budget"
    )
