"""Sweep-engine benchmark: vectorized vs scalar over 100+ scenarios.

Acceptance gate for the vectorized evaluation engine: a sweep over at
least 100 (topology, workload, parameter) scenarios must complete at
least 5x faster on the batched NumPy engine than on the scalar
reference path, while producing identical integer metrics and energies
within 1e-9 relative tolerance.

The scalar pass reuses the same warmed topologies and route caches as
the vectorized pass, so the measured ratio isolates the per-flow Python
accumulation cost -- exactly what the engine removed.  Set
``REPRO_SWEEP_QUICK=1`` (the CI smoke invocation) to shrink the grid
and skip the timing assertion, which is hardware-dependent.
"""

from __future__ import annotations

import time

from _bench_utils import quick_mode, run_once

from repro.eval import (
    RunningPivot,
    RunningStats,
    StreamingSweepRunner,
    SweepRunner,
    evaluate_comm_case,
    format_table,
    sweep_grid,
)
from repro.eval.sweeps import case_topology, synthetic_traffic
from repro.net.analytic import communication_cost
from repro.net.vectorized import communication_cost_vec

ARCHS = ("floret", "siam", "kite", "swap")
PATTERNS = ("uniform", "neighbor", "hotspot", "transpose")
FLIT_OVERRIDES = ((), (("flit_bytes", 16),), (("flit_bytes", 64),))


def _grid():
    if quick_mode():
        return sweep_grid(archs=("siam", "kite"), sizes=(16,),
                          workloads=("uniform", "neighbor"), seeds=(0,))
    cases = []
    for seeds in ((0, 1, 2),):
        cases += sweep_grid(
            archs=ARCHS, sizes=(36, 64), workloads=PATTERNS,
            seeds=seeds, overrides=FLIT_OVERRIDES,
        )
    return cases


def _timed_pass(cases, evaluate):
    t0 = time.perf_counter()
    reports = [evaluate(c) for c in cases]
    return reports, time.perf_counter() - t0


def _scalar_case(case):
    topo = case_topology(case)
    transfers = [
        tuple(row)
        for row in synthetic_traffic(
            case.workload, case.num_chiplets, case.seed
        ).tolist()
    ]
    return communication_cost(topo, transfers)


def _vector_case(case):
    topo = case_topology(case)
    return communication_cost_vec(
        topo, synthetic_traffic(case.workload, case.num_chiplets, case.seed)
    )


def _run():
    cases = _grid()
    # Warm every topology and its routing tables outside the timed
    # region so both passes see identical cached state.
    for case in cases:
        case_topology(case).routing_tables()
    scalar_reports, scalar_s = _timed_pass(cases, _scalar_case)
    vector_reports, vector_s = _timed_pass(cases, _vector_case)
    # The SweepRunner path (process fan-out) must agree with the inline
    # vectorized pass.
    outcome = SweepRunner(evaluate_comm_case, workers=4).run(cases)
    assert not outcome.failures, outcome.failures
    # The streaming path folds the same grid into running aggregations
    # with bounded memory; its aggregates must match gather-at-end.
    stream_aggs = (RunningPivot("energy_pj"),
                   RunningStats("latency_cycles"))
    stream_out = StreamingSweepRunner(
        evaluate_comm_case, workers=4
    ).run_stream(cases, stream_aggs)
    assert not stream_out.failures, stream_out.failures
    return (cases, scalar_reports, scalar_s, vector_reports, vector_s,
            outcome, stream_aggs)


def test_sweep_engine_speedup(benchmark):
    (cases, scalar_reports, scalar_s, vector_reports, vector_s, outcome,
     stream_aggs) = run_once(benchmark, _run)
    # Streamed aggregation == gather-at-end aggregation on the full grid.
    stream_pivot, stream_latency = stream_aggs
    gather_pivot = outcome.pivot("energy_pj")
    table = stream_pivot.table()
    assert set(table) == set(gather_pivot)
    for row, cols in gather_pivot.items():
        assert set(table[row]) == set(cols)
        for col, mean in cols.items():
            assert abs(table[row][col] - mean) <= 1e-12 * max(1.0, abs(mean))
    latencies = outcome.metric("latency_cycles")
    assert stream_latency.count == len(latencies)
    assert abs(stream_latency.sum - latencies.sum()) <= (
        1e-12 * max(1.0, abs(latencies.sum()))
    )
    speedup = scalar_s / max(vector_s, 1e-12)
    table = format_table(
        ["scenarios", "scalar (s)", "vectorized (s)", "speedup",
         "sweep workers", "sweep (s)"],
        [(len(cases), scalar_s, vector_s, speedup,
          outcome.workers, outcome.elapsed_s)],
        title="Vectorized engine sweep: scalar oracle vs batched NumPy",
    )
    print()
    print(table)

    if not quick_mode():
        assert len(cases) >= 100
        assert speedup >= 5.0, (
            f"vectorized sweep only {speedup:.1f}x faster than scalar"
        )

    for case, scalar, vector, swept in zip(
        cases, scalar_reports, vector_reports, outcome.results
    ):
        assert vector.latency_cycles == scalar.latency_cycles, case.case_id
        assert vector.serial_latency_cycles == scalar.serial_latency_cycles
        assert vector.total_flits == scalar.total_flits
        assert vector.packet_count == scalar.packet_count
        assert abs(vector.energy_pj - scalar.energy_pj) <= (
            1e-9 * max(1.0, abs(scalar.energy_pj))
        ), case.case_id
        assert swept.metrics["latency_cycles"] == scalar.latency_cycles
        assert abs(swept.metrics["energy_pj"] - scalar.energy_pj) <= (
            1e-9 * max(1.0, abs(scalar.energy_pj))
        )
