"""Saturation bench: closed-loop accepted throughput vs offered load.

The flow-control acceptance gate: with finite buffers, credit
backpressure and per-source injection queues (``fc_*`` overrides on
``NoIParams``), accepted throughput must *plateau* past the saturation
knee instead of diverging -- the behaviour that actually differentiates
the NoI topologies under congestion, which the open-loop model cannot
show.  Per architecture the bench asserts:

1. below the knee, accepted throughput tracks offered load;
2. past the knee it plateaus (no collapse, and it cannot diverge);
3. at least two architectures saturate strictly inside the swept range,
   so the knee is informative, not censored.

The ramp evaluator (``evaluate_saturation_case``) rides ``SweepRunner``
with a ``ResultStore`` (``REPRO_STORE_DIR``), so saturation sweeps
cache, resume and upload with the sweep-results artifact like every
other figure bench.  ``REPRO_SWEEP_QUICK=1`` shrinks the system and the
windows.
"""

from __future__ import annotations

import os

from _bench_utils import quick_mode, run_once

from repro.eval import (
    ResultStore,
    SweepRunner,
    evaluate_saturation_case,
    format_table,
    sweep_grid,
)
from repro.viz import render_saturation_curves

ARCHS = ("floret", "siam", "kite", "swap")

#: Flow-control knobs, as ``NoIParams`` overrides so they participate
#: in the store keys.  Buffers are sized to saturate without credit
#: deadlock on the ring-bearing topologies (Kite/SWAP/Floret) across
#: the swept overload range.
FC_OVERRIDES = (
    ("fc_buffer_flits", 32),
    ("fc_credit_rtt", 2),
    ("fc_source_queue", 4),
)
FC_OVERRIDES_QUICK = (
    ("fc_buffer_flits", 24),
    ("fc_credit_rtt", 2),
    ("fc_source_queue", 4),
)

WORKLOAD = "uniform@0.02-0.26/7:w64+256"
WORKLOAD_QUICK = "uniform@0.03-0.3/5:w48+160"


def _cases():
    if quick_mode():
        return sweep_grid(archs=ARCHS, sizes=(36,),
                          workloads=(WORKLOAD_QUICK,),
                          overrides=(FC_OVERRIDES_QUICK,))
    return sweep_grid(archs=ARCHS, sizes=(64,), workloads=(WORKLOAD,),
                      overrides=(FC_OVERRIDES,))


def _run():
    store_dir = os.environ.get("REPRO_STORE_DIR")
    store = ResultStore(store_dir) if store_dir else None
    runner = SweepRunner(evaluate_saturation_case, workers=4, store=store)
    outcome = runner.run(_cases())
    assert not outcome.failures, outcome.failures
    return outcome


def test_saturation(benchmark):
    outcome = run_once(benchmark, _run)

    rows = []
    curves = {}
    offered = None
    for result in outcome.ok:
        m = result.metrics
        arrays = result.arrays
        rows.append((
            result.case.arch,
            m["knee_rate"],
            m["saturation_throughput"],
            m["accepted_at_peak"],
            m["peak_steady_latency"],
            m["peak_link_utilization"],
            m["total_credit_stall_cycles"],
        ))
        offered = arrays["offered_rates"]
        curves[result.case.arch] = arrays["accepted_throughput"]
    print()
    print(format_table(
        ["arch", "knee rate", "sat thr", "acc@peak", "peak lat",
         "peak util", "credit stalls"],
        rows,
        title="Closed-loop saturation (finite buffers + backpressure, "
              "pkt/node/cycle)",
        float_format="{:.4g}",
    ))
    print()
    print(render_saturation_curves(offered, curves))

    saturated_inside = 0
    for result in outcome.ok:
        arch = result.case.arch
        m = result.metrics
        arrays = result.arrays
        acc = arrays["accepted_throughput"]
        off = arrays["offered_rates"]
        assert acc[0] >= 0.8 * off[0], (
            f"{arch}: accepted {acc[0]:.4f} does not track offered "
            f"{off[0]:.4f} below the knee"
        )
        assert acc[-1] >= 0.75 * acc.max(), (
            f"{arch}: accepted throughput collapsed past the knee "
            f"({acc[-1]:.4f} vs peak {acc.max():.4f})"
        )
        assert acc.max() <= 1.05 * off.max(), (
            f"{arch}: accepted throughput {acc.max():.4f} exceeds "
            f"offered {off.max():.4f} -- accounting bug"
        )
        if m["knee_rate"] <= 0.8 * m["peak_offered"]:
            saturated_inside += 1
    assert saturated_inside >= 2, (
        f"only {saturated_inside} architectures saturated inside the "
        f"swept range; widen the ramp so the knee differentiates "
        f"topologies"
    )
