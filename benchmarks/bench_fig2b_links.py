"""Fig. 2(b): total link counts (and length census) per architecture.

Paper ordering at 100 chiplets: Kite has the most links (torus, 200),
then SIAM (mesh, 180), then SWAP (small-world, sparse), and Floret the
fewest (chain + sparse top-level); Floret's links are almost all
single-hop.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import exp_fig2b, format_table


def test_fig2b_links(benchmark):
    summaries = run_once(benchmark, exp_fig2b)
    table = format_table(
        ["arch", "links", "mean ports", "total len (mm)",
         "1-hop frac", "bisection", "area (mm^2)"],
        [
            (
                s.name,
                s.num_links,
                s.mean_ports,
                s.total_link_length_mm,
                s.fraction_single_hop_links(),
                s.bisection_links,
                s.noi_area_mm2,
            )
            for s in summaries.values()
        ],
        title="Fig. 2(b): link structure, 100 chiplets",
    )
    print()
    print(table)
    links = {name: s.num_links for name, s in summaries.items()}
    assert links["kite"] > links["siam"] > links["swap"] > links["floret"]
    assert summaries["floret"].fraction_single_hop_links() > 0.9
