"""Fig. 2(b): total link counts (and length census) per architecture.

Paper ordering at 100 chiplets: Kite has the most links (torus, 200),
then SIAM (mesh, 180), then SWAP (small-world, sparse), and Floret the
fewest (chain + sparse top-level); Floret's links are almost all
single-hop.

Ported to the :class:`~repro.eval.sweeps.SweepRunner` fan-out.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import (
    SweepRunner,
    evaluate_topology_case,
    format_table,
    sweep_grid,
)

NUM_CHIPLETS = 100
ARCHS = ("kite", "siam", "swap", "floret")


def _sweep():
    outcome = SweepRunner(evaluate_topology_case, workers=4).run(
        sweep_grid(archs=ARCHS, sizes=(NUM_CHIPLETS,))
    )
    assert not outcome.failures, outcome.failures
    return {r.case.arch: r.metrics for r in outcome.ok}


def test_fig2b_links(benchmark):
    census = run_once(benchmark, _sweep)
    table = format_table(
        ["arch", "links", "mean ports", "total len (mm)",
         "1-hop frac", "bisection", "area (mm^2)"],
        [
            (
                arch,
                int(m["num_links"]),
                m["mean_ports"],
                m["total_link_length_mm"],
                m["fraction_single_hop"],
                int(m["bisection_links"]),
                m["noi_area_mm2"],
            )
            for arch, m in census.items()
        ],
        title="Fig. 2(b): link structure, 100 chiplets",
    )
    print()
    print(table)
    links = {arch: m["num_links"] for arch, m in census.items()}
    assert links["kite"] > links["siam"] > links["swap"] > links["floret"]
    assert census["floret"]["fraction_single_hop"] > 0.9
