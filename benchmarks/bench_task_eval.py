"""Task-evaluation bench: batched engine + schedule-memo speedup gates.

Two acceptance gates for the cross-layer batched task evaluator:

1. **Batched ratio**: over the Table I / Table II mix grid (every
   distinct (model, placement) pair of the paper's mixes, placed with
   each architecture's own mapper), the cross-layer batched
   ``evaluate_task`` must be at least 3x faster than the pinned
   ``evaluate_task_perlayer`` oracle -- with the equivalence itself
   enforced by ``tests/test_perf.py`` (bit-exact ints, 1e-9 floats).
   The gate asserts the *ratio* of the two engines on the same host
   and the same grid, so it is robust to runner variance.
2. **Memo ratio**: on a repeat-heavy mix (the Table II pattern: one
   mid-size DNN repeated far beyond the system's concurrency), a
   memoizing ``SystemScheduler`` must finish at least 5x faster than
   a cold one (``memoize=False``) while producing a bit-identical
   ``ScheduleResult`` and registering cache hits in the
   ``sched_taskperf_cache_hits`` counter.

``REPRO_SWEEP_QUICK=1`` shrinks the grids (two architectures at 64
chiplets, fewer repeats) but keeps both ratio floors armed at 3x/5x:
the batched ratio is per-task and the memo ratio saturates with
repeats/slots, so neither floor needs relaxing on small grids.

Every run appends its measured ratios to ``ratio-history.jsonl``
inside ``REPRO_STORE_DIR`` (uploaded with the sweep-results artifact)
and *warns* -- never fails -- when a ratio drifts more than 20% below
the trailing median: the hard floor catches cliffs, the history watch
catches slow drift.
"""

from __future__ import annotations

import os
import time
import warnings
from pathlib import Path

from _bench_utils import quick_mode, run_once

from repro.core.scheduler import SystemScheduler
from repro.eval import (
    ALL_ARCHS,
    append_ratio_history,
    format_table,
    load_ratio_history,
    ratio_drift_warning,
)
from repro.eval.experiments import (
    mapper_for,
    mix_task_placements,
    topology_for,
)
from repro.net.perf import evaluate_task, evaluate_task_perlayer
from repro.obs.metrics import REGISTRY
from repro.workloads.tasks import DNNTask
from repro.workloads.zoo import table1_model

BATCHED_FLOOR = 3.0
MEMO_FLOOR = 5.0

#: Mixes whose distinct-model union covers the Table I DNNs the mapper
#: can place (the batched-gate grid).
GATE_MIXES = ("WL1", "WL2")
GATE_MIXES_QUICK = ("WL2",)

#: The repeat-heavy memo mix: one deep DNN (Table I DNN6 = ResNet-152,
#: the priciest evaluation per task relative to its mapping overhead)
#: repeated far beyond the system's concurrent task slots.
MEMO_DNN = "DNN6"
MEMO_TASKS = 120
MEMO_TASKS_QUICK = 60


def _gate_grid():
    if quick_mode():
        return ("floret", "siam"), 64, GATE_MIXES_QUICK, 3
    return ALL_ARCHS, 100, GATE_MIXES, 5


def _memo_grid():
    if quick_mode():
        return 64, MEMO_TASKS_QUICK
    return 100, MEMO_TASKS


def _run_batched_gate():
    archs, size, mixes, rounds = _gate_grid()
    rows = []
    totals = {"batched": 0.0, "perlayer": 0.0}
    for arch in archs:
        topo = topology_for(arch, size)
        topo.routing_tables()
        grid = []
        seen = set()
        for mix in mixes:
            for model, plan, ids in mix_task_placements(arch, mix, size):
                if (model.name, model.dataset) in seen:
                    continue
                seen.add((model.name, model.dataset))
                grid.append((model, plan, ids))
        # Warm every code path and the plan/model derivation caches
        # outside the timed region, for both engines alike.
        for model, plan, ids in grid:
            evaluate_task(topo, model, plan, ids)
            evaluate_task_perlayer(topo, model, plan, ids)

        timed = {}
        for engine, fn in (("batched", evaluate_task),
                           ("perlayer", evaluate_task_perlayer)):
            t0 = time.perf_counter()
            for _ in range(rounds):
                for model, plan, ids in grid:
                    fn(topo, model, plan, ids)
            timed[engine] = time.perf_counter() - t0
            totals[engine] += timed[engine]
        rows.append((
            f"{arch}/{size}", len(grid), rounds,
            timed["perlayer"], timed["batched"],
            timed["perlayer"] / max(timed["batched"], 1e-12),
        ))
    return rows, totals


def _run_memo_gate():
    size, num_tasks = _memo_grid()
    topo = topology_for("floret", size)
    topo.routing_tables()
    model = table1_model(MEMO_DNN)
    tasks = [
        DNNTask(task_id=f"memo/{i:03d}", dnn_id=MEMO_DNN, model=model)
        for i in range(num_tasks)
    ]

    def scheduler(memoize):
        return SystemScheduler(
            topo, mapper_for("floret", size), memoize=memoize
        )

    # Warm the plan/model derivation caches and every code path so the
    # cold run measures the evaluation engine, not one-time setup.
    scheduler(memoize=False).run(tasks[:4])

    t0 = time.perf_counter()
    cold = scheduler(memoize=False).run(tasks)
    cold_s = time.perf_counter() - t0

    hits_before = REGISTRY.counter("sched_taskperf_cache_hits").value
    t0 = time.perf_counter()
    memo = scheduler(memoize=True).run(tasks)
    memo_s = time.perf_counter() - t0
    hits = REGISTRY.counter("sched_taskperf_cache_hits").value - hits_before

    assert memo == cold, (
        "memoized ScheduleResult differs from the cold run"
    )
    assert hits > 0, "memoized run registered no cache hits"
    return cold, cold_s, memo_s, hits, num_tasks


def _run():
    gate_rows, totals = _run_batched_gate()
    memo_result, cold_s, memo_s, hits, num_tasks = _run_memo_gate()
    return gate_rows, totals, memo_result, cold_s, memo_s, hits, num_tasks


def test_task_eval(benchmark):
    (gate_rows, totals, memo_result, cold_s, memo_s, hits,
     num_tasks) = run_once(benchmark, _run)

    speedup = totals["perlayer"] / max(totals["batched"], 1e-12)
    memo_speedup = cold_s / max(memo_s, 1e-12)

    print()
    print(format_table(
        ["grid", "cases", "rounds", "perlayer (s)", "batched (s)",
         "speedup"],
        gate_rows,
        title="Batched-engine gate: cross-layer evaluate_task vs "
              "per-layer oracle",
    ))
    print(format_table(
        ["tasks", "makespan", "cold (s)", "memoized (s)", "hits",
         "speedup"],
        [(num_tasks, memo_result.makespan_cycles, cold_s, memo_s,
          hits, memo_speedup)],
        title=f"Schedule-memo gate: {MEMO_DNN} x{num_tasks} on "
              "floret (bit-identical results)",
    ))

    store_dir = os.environ.get("REPRO_STORE_DIR")
    if store_dir:
        history_path = Path(store_dir) / "ratio-history.jsonl"
        history = load_ratio_history(history_path)
        for bench, ratio, cases in (
            ("task_eval", speedup, sum(r[1] for r in gate_rows)),
            ("task_eval_memo", memo_speedup, num_tasks),
        ):
            prior = [
                rec for rec in history
                if rec.get("bench") == bench
                and rec.get("quick") == quick_mode()
            ]
            drift = ratio_drift_warning(prior, ratio, tolerance=0.2)
            if drift is not None:
                warnings.warn(f"{bench} drift watch: {drift}",
                              RuntimeWarning)
                print(f"WARNING: {drift}")
            append_ratio_history(history_path, {
                "bench": bench,
                "quick": quick_mode(),
                "speedup": round(ratio, 4),
                "cases": cases,
                "unix_time": round(time.time(), 3),
            })

    assert speedup >= BATCHED_FLOOR, (
        f"batched evaluate_task only {speedup:.1f}x faster than the "
        f"per-layer oracle (floor {BATCHED_FLOOR}x) over the mix grid"
    )
    assert memo_speedup >= MEMO_FLOOR, (
        f"memoized scheduler only {memo_speedup:.1f}x faster than cold "
        f"(floor {MEMO_FLOOR}x) on {num_tasks} repeated tasks"
    )
