"""Fig. 2(a): router-port configuration for Kite, SIAM, SWAP and Floret.

The paper's signature: Kite is dominated by 4-port routers, SIAM (mesh)
by 3- and 4-port routers, SWAP by 2- and 3-port routers, and Floret by
2-port routers (only heads/tails have more).

Ported to the :class:`~repro.eval.sweeps.SweepRunner` fan-out: the four
architecture censuses build in parallel worker processes.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import (
    SweepRunner,
    evaluate_topology_case,
    format_table,
    sweep_grid,
)

NUM_CHIPLETS = 100


def _sweep():
    cases = sweep_grid(
        archs=("kite", "siam", "swap", "floret"), sizes=(NUM_CHIPLETS,)
    )
    outcome = SweepRunner(evaluate_topology_case, workers=4).run(cases)
    assert not outcome.failures, outcome.failures
    hists = {}
    for result in outcome.ok:
        hists[result.case.arch] = {
            int(key.split("_", 1)[1]): int(value)
            for key, value in result.metrics.items()
            if key.startswith("ports_")
        }
    return hists


def test_fig2a_router_ports(benchmark):
    hists = run_once(benchmark, _sweep)
    ports = sorted({p for h in hists.values() for p in h})
    table = format_table(
        ["arch"] + [f"{p}-port" for p in ports],
        [
            [arch] + [hists[arch].get(p, 0) for p in ports]
            for arch in ("kite", "siam", "swap", "floret")
        ],
        title="Fig. 2(a): router-port histogram, 100 chiplets",
    )
    print()
    print(table)

    def dominant(arch):
        return max(hists[arch], key=hists[arch].get)

    assert dominant("kite") == 4
    assert dominant("siam") in (3, 4)
    assert dominant("swap") in (2, 3)
    assert dominant("floret") == 2
    # Floret: the overwhelming majority of routers are 2-port.
    floret = hists["floret"]
    assert floret[2] >= 0.85 * sum(floret.values())
