"""Benchmark-suite conftest.

Shared helpers live in :mod:`_bench_utils` (see its docstring for why
they are not defined here); this file only keeps the directory
importable as a pytest collection root.
"""
