"""Shared benchmark configuration.

Heavy experiment drivers are timed with a single round (they are
deterministic end-to-end system evaluations, not microbenchmarks), and
each benchmark prints the regenerated table/figure rows so the paper
comparison is visible in the benchmark log.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with one warm round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
