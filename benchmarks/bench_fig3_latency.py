"""Fig. 3: NoI latency for the Table II mixes, normalised to Floret.

The paper reports Floret outperforming Kite and SIAM by up to 2.24x.
Our packet-latency model reproduces the ordering (Floret best, Kite
worst) with factors up to ~1.7x; see EXPERIMENTS.md for the comparison.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import ALL_ARCHS, exp_fig3, format_table


def test_fig3_noi_latency(benchmark):
    comparisons = run_once(benchmark, exp_fig3)
    rows = []
    for comp in comparisons:
        norm = comp.latency_normalized()
        rows.append([comp.mix_name] + [norm[a] for a in ALL_ARCHS])
    table = format_table(
        ["mix"] + list(ALL_ARCHS),
        rows,
        title="Fig. 3: NoI latency normalised to Floret (lower is better)",
    )
    print()
    print(table)
    for comp in comparisons:
        norm = comp.latency_normalized()
        # Floret is the reference and must win against the torus/mesh
        # baselines on every mix.
        assert norm["floret"] == 1.0
        assert norm["kite"] > 1.0
        assert norm["siam"] > 1.0
    # The paper's headline: a >1.2x gap exists on at least one mix.
    assert any(
        comp.latency_normalized()["kite"] > 1.2 for comp in comparisons
    )
