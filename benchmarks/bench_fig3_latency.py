"""Fig. 3: NoI latency for the Table II mixes, normalised to Floret.

The paper reports Floret outperforming Kite and SIAM by up to 2.24x.
Our packet-latency model reproduces the ordering (Floret best, Kite
worst) with factors up to ~1.7x; see EXPERIMENTS.md for the comparison.

Ported to the :class:`~repro.eval.sweeps.SweepRunner` fan-out via the
shared ``mix_sweep_normalized`` driver (``bench_fig5_energy`` runs the
same sweep on the energy metric).
"""

from __future__ import annotations

from _bench_utils import mix_sweep_normalized, run_once

from repro.eval import ALL_ARCHS, format_table

MIXES = ("WL1", "WL2", "WL3", "WL4", "WL5")


def _sweep():
    return mix_sweep_normalized("mean_packet_latency", mixes=MIXES)


def test_fig3_noi_latency(benchmark):
    normalized = run_once(benchmark, _sweep)
    table = format_table(
        ["mix"] + list(ALL_ARCHS),
        [[mix] + [normalized[mix][a] for a in ALL_ARCHS] for mix in MIXES],
        title="Fig. 3: NoI latency normalised to Floret (lower is better)",
    )
    print()
    print(table)
    for mix in MIXES:
        norm = normalized[mix]
        # Floret is the reference and must win against the torus/mesh
        # baselines on every mix.
        assert norm["floret"] == 1.0
        assert norm["kite"] > 1.0
        assert norm["siam"] > 1.0
    # The paper's headline: a >1.2x gap exists on at least one mix.
    assert any(normalized[mix]["kite"] > 1.2 for mix in MIXES)
