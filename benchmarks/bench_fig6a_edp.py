"""Fig. 6(a): EDP, Floret-3D vs joint performance-thermal mapping.

Paper: the performance-only Floret-3D mapping has ~9% better (lower)
EDP on average, since the joint design trades some locality for thermal
spread.  Our MOO finds joint mappings within the 10% EDP budget, so the
Floret EDP advantage is bounded by that budget.

Ported to the :class:`~repro.eval.sweeps.SweepRunner` fan-out: one case
per Table I DNN through ``evaluate_moo_case``, so the five NSGA-II runs
execute in parallel worker processes instead of serially.
"""

from __future__ import annotations

import statistics

from _bench_utils import run_once

from repro.eval import (
    FIG6_DNNS,
    SweepCase,
    SweepRunner,
    evaluate_moo_case,
    format_table,
)
from repro.workloads.zoo import TABLE1_SPEC

MODEL_NAMES = {row[0]: row[1] for row in TABLE1_SPEC}


def _sweep():
    cases = [
        SweepCase(arch="floret", num_chiplets=100, workload=dnn_id,
                  tag="fig6")
        for dnn_id in FIG6_DNNS
    ]
    outcome = SweepRunner(
        evaluate_moo_case, workers=len(cases), chunksize=1
    ).run(cases)
    assert not outcome.failures, outcome.failures
    return outcome


def test_fig6a_edp(benchmark):
    outcome = run_once(benchmark, _sweep)
    rows = [(r.case.workload, r.metrics) for r in outcome.ok]
    table = format_table(
        ["dnn", "model", "floret EDP", "joint EDP", "floret/joint"],
        [
            (dnn_id, MODEL_NAMES[dnn_id], m["floret_edp"], m["joint_edp"],
             m["floret_edp"] / m["joint_edp"])
            for dnn_id, m in rows
        ],
        title="Fig. 6(a): EDP (pJ x cycles), 100-PE 3D system",
        float_format="{:.3e}",
    )
    print()
    print(table)
    mean_adv = statistics.mean(
        m["floret_edp"] / m["joint_edp"] for _, m in rows
    )
    print(f"\nmean floret/joint EDP: {mean_adv:.3f} (paper ~0.91)")
    for _, m in rows:
        # Performance-only mapping never has worse EDP than the joint
        # design, and the joint design stays within the 10% EDP budget.
        assert m["floret_edp"] <= m["joint_edp"] * 1.001
        assert m["joint_edp"] <= m["floret_edp"] * 1.11
