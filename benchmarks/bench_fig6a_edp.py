"""Fig. 6(a): EDP, Floret-3D vs joint performance-thermal mapping.

Paper: the performance-only Floret-3D mapping has ~9% better (lower)
EDP on average, since the joint design trades some locality for thermal
spread.  Our MOO finds joint mappings within the 10% EDP budget, so the
Floret EDP advantage is bounded by that budget.
"""

from __future__ import annotations

import statistics

from _bench_utils import run_once

from repro.eval import exp_fig6, format_table


def test_fig6a_edp(benchmark):
    rows = run_once(benchmark, exp_fig6)
    table = format_table(
        ["dnn", "model", "floret EDP", "joint EDP", "floret/joint"],
        [
            (r.dnn_id, r.model_name, r.floret_edp, r.joint_edp,
             r.edp_advantage)
            for r in rows
        ],
        title="Fig. 6(a): EDP (pJ x cycles), 100-PE 3D system",
        float_format="{:.3e}",
    )
    print()
    print(table)
    mean_adv = statistics.mean(r.edp_advantage for r in rows)
    print(f"\nmean floret/joint EDP: {mean_adv:.3f} (paper ~0.91)")
    for r in rows:
        # Performance-only mapping never has worse EDP than the joint
        # design, and the joint design stays within the 10% EDP budget.
        assert r.floret_edp <= r.joint_edp * 1.001
        assert r.joint_edp <= r.floret_edp * 1.11
