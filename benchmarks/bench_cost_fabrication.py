"""Section II fabrication cost: Eqs. (2)-(5) at 100 chiplets.

Paper: Floret reduces fabrication cost by about 2.8x, 2.1x and 1.89x
versus Kite, SIAM and SWAP respectively.  Our area-driven yield model
reproduces Kite (~2.8x) and SIAM (~2.0x); SWAP comes out cheaper than
the paper reports because our synthesis uses fewer/shorter links (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import exp_cost, format_table

PAPER_RATIOS = {"kite": 2.8, "siam": 2.1, "swap": 1.89}


def test_cost_fabrication(benchmark):
    costs = run_once(benchmark, exp_cost)
    table = format_table(
        ["arch", "NoI area (mm^2)", "relative cost", "paper"],
        [
            (name, row["noi_area_mm2"], row["relative_cost"],
             PAPER_RATIOS.get(name, 1.0))
            for name, row in costs.items()
        ],
        title="Fabrication cost relative to Floret (Eq. (5))",
    )
    print()
    print(table)
    assert costs["floret"]["relative_cost"] == 1.0
    # Ordering: Kite > SIAM > SWAP > Floret.
    assert (
        costs["kite"]["relative_cost"]
        > costs["siam"]["relative_cost"]
        > costs["swap"]["relative_cost"]
        > costs["floret"]["relative_cost"]
    )
    # Kite and SIAM factors land near the paper's.
    assert 2.2 < costs["kite"]["relative_cost"] < 3.4
    assert 1.6 < costs["siam"]["relative_cost"] < 2.6
