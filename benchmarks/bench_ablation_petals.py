"""Ablation: petal count and SFC family vs system behaviour.

DESIGN.md design choices probed here:

* number of SFCs (lambda): one monolithic serpentine vs the paper's six
  petals vs more -- multiple petals shorten re-entry jumps (Eq. (1)) and
  add redundancy at the cost of a few extra top-level links;
* mapping strategy on the *same* Floret topology: contiguous (dataflow-
  aware) vs greedy least-hop.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.core import ContiguousMapper, GreedyMapper, SystemScheduler
from repro.core.floret import build_floret
from repro.eval import format_table
from repro.workloads import mix_by_name


def _petal_sweep():
    tasks = mix_by_name("WL5").tasks()
    rows = []
    for petals in (1, 2, 4, 6, 10):
        design = build_floret(100, petals)
        mapper = ContiguousMapper(design.allocation_order, design.topology)
        result = SystemScheduler(design.topology, mapper).run(tasks)
        rows.append(
            (
                petals,
                design.curve.eq1_distance,
                design.topology.num_links,
                result.mean_packet_latency,
                result.utilization,
            )
        )
    return rows


def test_ablation_petal_count(benchmark):
    rows = run_once(benchmark, _petal_sweep)
    table = format_table(
        ["petals", "Eq1 d", "links", "pkt latency", "utilization"],
        rows,
        title="Ablation: petal count (WL5, 100 chiplets)",
    )
    print()
    print(table)
    by_petals = {r[0]: r for r in rows}
    # Multiple petals must not lose to the monolithic curve on latency.
    assert by_petals[6][3] <= by_petals[1][3] * 1.05


def _mapping_strategy():
    design = build_floret(100, 6)
    tasks = mix_by_name("WL3").tasks()
    contiguous = SystemScheduler(
        design.topology,
        ContiguousMapper(design.allocation_order, design.topology),
    ).run(tasks)
    greedy = SystemScheduler(
        design.topology, GreedyMapper(design.topology)
    ).run(tasks)
    return contiguous, greedy


def test_ablation_mapping_strategy(benchmark):
    contiguous, greedy = run_once(benchmark, _mapping_strategy)
    table = format_table(
        ["mapper", "pkt latency", "NoI energy (pJ)", "utilization"],
        [
            ("contiguous", contiguous.mean_packet_latency,
             contiguous.total_noi_energy_pj, contiguous.utilization),
            ("greedy", greedy.mean_packet_latency,
             greedy.total_noi_energy_pj, greedy.utilization),
        ],
        title="Ablation: mapping strategy on the Floret topology (WL3)",
        float_format="{:.3e}",
    )
    print()
    print(table)
    # Dataflow-aware contiguous mapping beats greedy on its own curve.
    assert contiguous.mean_packet_latency <= greedy.mean_packet_latency
