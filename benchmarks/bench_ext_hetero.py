"""Extension: heterogeneous transformer acceleration (Section IV).

Quantifies the paper's closing argument: running attention's dynamic
matmuls on NVM PIM costs crossbar rewrites every inference (latency,
energy, endurance), while a heterogeneous system (SFC PIM macro +
tensor-core islands) avoids them entirely.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import format_table
from repro.eval.extensions import exp_hetero_transformer


def test_ext_heterogeneous_transformer(benchmark):
    rows = run_once(benchmark, exp_hetero_transformer)
    table_rows = []
    for r in rows:
        table_rows.append(
            (
                r.config_name,
                r.pim_only.latency_cycles,
                r.heterogeneous.latency_cycles,
                r.speedup,
                r.energy_ratio,
                f"{r.pim_only.lifetime_inferences():.2e}",
            )
        )
    print()
    print(format_table(
        ["config", "PIM-only (cyc)", "hetero (cyc)", "speedup",
         "energy x", "PIM-only lifetime (inferences)"],
        table_rows,
        title="Section IV: PIM-only vs heterogeneous encoder stacks",
    ))
    for r in rows:
        # Heterogeneous must win on latency and energy, and PIM-only must
        # have finite (endurance-limited) lifetime.
        assert r.speedup > 1.5
        assert r.energy_ratio > 1.0
        assert r.pim_only.lifetime_inferences() != float("inf")
        assert r.heterogeneous.lifetime_inferences() == float("inf")
    # Bigger models suffer more from rewrites (paper: 8.98x vs 2.06x
    # storage blow-up).
    tiny = next(r for r in rows if r.config_name == "bert-tiny")
    base = next(r for r in rows if r.config_name == "bert-base")
    assert (
        base.pim_only.cell_writes_per_inference
        > tiny.pim_only.cell_writes_per_inference
    )
