"""Observability-overhead gate: tracing must be free when disabled.

The whole ``repro.obs`` layer rests on one promise: an *untraced* run
pays nothing measurable.  This bench holds that promise to a number and
prices the enabled path honestly:

1. **Disabled-tracer gate (hard).**  With ``REPRO_TRACE`` unset, a
   load-sweep-style case loop through the instrumented
   :func:`~repro.eval.sweeps._evaluate_one` path (Stopwatch, registry
   counters, latency histogram, null-tracer check) must stay within
   **3%** of the bare ``evaluate(case)`` loop.  Best-of-N timing on
   both sides so scheduler noise cannot fail the gate spuriously.  The
   measured ratio (baseline / instrumented, ~1.0) is appended to
   ``ratio-history.jsonl`` under ``REPRO_STORE_DIR`` with the usual
   >20% drift warning.

2. **Enabled-tracer price list (informational).**  Per engine tier
   (``events`` / ``epochs`` / ``epochs-par`` / ``epochs-jit``), the
   same contended packet grid is resolved with ``profile=False`` and
   ``profile=True`` (phase timings + dispatch counters); and one traced
   :func:`~repro.eval.shard.drain_cases` run is compared against an
   untraced one.  These rows quantify what switching ``REPRO_TRACE``
   on actually costs -- they are printed, not gated, because enabled
   tracing is allowed to cost.

3. **Attribution-off gate (hard) + attribution price list.**  The
   latency-attribution layer (``attribution=True`` on
   ``simulate_packets`` + :func:`~repro.net.journey.latency_breakdown`)
   follows the same promise: with ``sim_attribution`` left at its
   default, the load-sweep evaluator must stay within **3%** of the
   pre-attribution path -- measured by draining the same grid with and
   without an explicit ``sim_attribution=0.0`` override (the override
   path exercises the knob plumbing without enabling collection).  The
   ratio is drift-watched under ``bench="attr_off_overhead"``.  The
   informational side prices ``attribution=True`` per engine tier:
   trace collection + the order-invariant breakdown reduction.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import replace
from pathlib import Path

from _bench_utils import quick_mode, run_once

from repro.eval import (
    ResultStore,
    append_ratio_history,
    evaluate_load_sweep_case,
    format_table,
    load_ratio_history,
    ratio_drift_warning,
    sweep_grid,
)
from repro.eval.shard import drain_cases
from repro.eval.sweeps import (
    _evaluate_one,
    case_topology,
    evaluate_comm_case,
)
from repro.net.grantkernel import warmup_kernels
from repro.net.journey import latency_breakdown
from repro.net.simulator import simulate, simulate_packets
from repro.obs import REGISTRY

ENGINES = ("events", "epochs", "epochs-par", "epochs-jit")
#: Disabled-path overhead ceiling: instrumented <= 1.03x bare.
OVERHEAD_CEILING = 1.03
REPEATS = 5


def _gate_grid():
    """The load-sweep grid the disabled-tracer gate times."""
    seeds = (0,) if quick_mode() else (0, 1)
    return sweep_grid(
        archs=("siam", "kite"), sizes=(36,),
        workloads=("uniform@0.04", "uniform@0.06"), seeds=seeds,
    )


def _drain_grid():
    """A cheap comm grid for the traced-drain price-list row."""
    seeds = (0, 1) if quick_mode() else (0, 1, 2, 3)
    return sweep_grid(
        archs=("siam", "kite"), sizes=(36,),
        workloads=("uniform", "transpose", "hotspot"), seeds=seeds,
    )


def _best_of(fn, *args):
    """Minimum wall-clock of ``REPEATS`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _disabled_gate():
    """Bare evaluator loop vs the instrumented ``_evaluate_one`` path."""
    assert not os.environ.get("REPRO_TRACE"), (
        "the disabled-tracer gate must run with REPRO_TRACE unset"
    )
    cases = _gate_grid()

    def bare(cs):
        for case in cs:
            evaluate_load_sweep_case(case)

    def instrumented(cs):
        for case in cs:
            result = _evaluate_one(evaluate_load_sweep_case, case)
            assert result.ok

    # Warm topology/routing caches outside the timed region, both
    # paths alike, so neither side pays first-build costs.
    bare(cases)
    instrumented(cases)

    # Interleave the repeats: back-to-back blocks of one path would
    # fold machine-load drift into the ratio.
    bare_s = instr_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        bare(cases)
        bare_s = min(bare_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        instrumented(cases)
        instr_s = min(instr_s, time.perf_counter() - t0)
    return {
        "cases": len(cases),
        "bare_s": bare_s,
        "instr_s": instr_s,
        "overhead": instr_s / max(bare_s, 1e-12),
        "ratio": bare_s / max(instr_s, 1e-12),
    }


def _attr_off_gate():
    """Default evaluator path vs an explicit ``sim_attribution=0.0``.

    Both sides run :func:`evaluate_load_sweep_case`; the override side
    pays the knob plumbing (override resolution, a distinct topology
    cache entry, the ``attribution`` branch test in the simulator) but
    must not pay for trace collection itself.
    """
    plain_cases = _gate_grid()
    off_cases = [
        replace(c, noi_overrides=(("sim_attribution", 0.0),),
                tag="attr-off")
        for c in plain_cases
    ]

    def drain(cs):
        for case in cs:
            evaluate_load_sweep_case(case)

    drain(plain_cases)   # warm topology/routing caches on both sides
    drain(off_cases)

    plain_s = off_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        drain(plain_cases)
        plain_s = min(plain_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        drain(off_cases)
        off_s = min(off_s, time.perf_counter() - t0)
    return {
        "cases": len(plain_cases),
        "bare_s": plain_s,
        "off_s": off_s,
        "overhead": off_s / max(plain_s, 1e-12),
        "ratio": plain_s / max(off_s, 1e-12),
    }


def _simulate_plain(topo, table, engine):
    simulate(topo, table, engine=engine)


def _simulate_profiled(topo, table, engine):
    simulate(topo, table, engine=engine, profile=True)


def _simulate_attributed(topo, table, engine):
    sim = simulate_packets(topo, table, engine=engine, attribution=True)
    latency_breakdown(sim, topo)


def _engine_price_list(tmp):
    """Enabled-profiling cost per engine tier + traced-drain cost."""
    from repro.eval.experiments import load_sweep_traffic, \
        parse_load_workload
    from repro.eval.sweeps import SweepCase

    warmup_kernels()
    size, workload = (64, "uniform@0.08") if quick_mode() else \
        (100, "uniform@0.08")
    case = SweepCase(arch="siam", num_chiplets=size, workload=workload)
    topo = case_topology(case)
    table = load_sweep_traffic(parse_load_workload(workload), size, seed=1)
    topo.routing_tables().queue_index()

    rows = []
    attr_rows = []
    for engine in ENGINES:
        simulate(topo, table[:64], engine=engine)  # warm the code path
        plain_s = _best_of(_simulate_plain, topo, table, engine)
        # profile=True: phase timings + dispatch counters, no tracer.
        profiled_s = _best_of(_simulate_profiled, topo, table, engine)
        rows.append((
            engine, plain_s, profiled_s,
            profiled_s / max(plain_s, 1e-12),
        ))
        # attribution=True: grant-trace collection + the journey
        # reduction into a LatencyBreakdown.
        _simulate_attributed(topo, table[:64], engine)
        attr_s = _best_of(_simulate_attributed, topo, table, engine)
        attr_rows.append((
            engine, plain_s, attr_s, attr_s / max(plain_s, 1e-12),
        ))

    # One traced drain vs one untraced drain of the same small grid.
    cases = _drain_grid()
    untraced_s = _best_of(
        lambda: drain_cases(ResultStore(_fresh_dir(tmp)),
                            evaluate_comm_case, cases, worker="plain")
    )
    traced_s = _best_of(
        lambda: drain_cases(ResultStore(_fresh_dir(tmp)),
                            evaluate_comm_case, cases, worker="traced",
                            trace=_fresh_dir(tmp))
    )
    rows.append((
        "drain+trace", untraced_s, traced_s,
        traced_s / max(untraced_s, 1e-12),
    ))
    return rows, attr_rows


_DIR_SEQ = [0]


def _fresh_dir(tmp) -> Path:
    _DIR_SEQ[0] += 1
    return Path(tmp) / f"scratch-{_DIR_SEQ[0]}"


def _run(tmp):
    gate = _disabled_gate()
    attr_gate = _attr_off_gate()
    price_list, attr_prices = _engine_price_list(tmp)
    return gate, attr_gate, price_list, attr_prices


def test_obs_overhead(benchmark, tmp_path):
    gate, attr_gate, price_list, attr_prices = run_once(
        benchmark, _run, tmp_path
    )

    print()
    print(format_table(
        ["path", "cases", "bare (s)", "instrumented (s)", "overhead"],
        [("disabled tracer", gate["cases"], gate["bare_s"],
          gate["instr_s"], gate["overhead"]),
         ("attribution off", attr_gate["cases"], attr_gate["bare_s"],
          attr_gate["off_s"], attr_gate["overhead"])],
        title="Disabled-path gates: bare evaluator loop vs "
              "instrumented _evaluate_one (REPRO_TRACE unset) and vs "
              "sim_attribution=0.0 override",
        float_format="{:.4f}",
    ))
    print(format_table(
        ["tier", "plain (s)", "profiled/traced (s)", "overhead"],
        price_list,
        title="Enabled-observability price list (informational)",
        float_format="{:.4f}",
    ))
    print(format_table(
        ["tier", "plain (s)", "attributed (s)", "overhead"],
        attr_prices,
        title="Latency-attribution price list (informational): "
              "simulate_packets(attribution=True) + latency_breakdown",
        float_format="{:.4f}",
    ))

    store_dir = os.environ.get("REPRO_STORE_DIR")
    if store_dir:
        history_path = Path(store_dir) / "ratio-history.jsonl"
        history = load_ratio_history(history_path)
        for bench, measured in (("obs_overhead", gate),
                                ("attr_off_overhead", attr_gate)):
            prior = [
                rec for rec in history
                if rec.get("bench") == bench
                and rec.get("quick") == quick_mode()
            ]
            drift = ratio_drift_warning(prior, measured["ratio"],
                                        tolerance=0.2)
            if drift is not None:
                warnings.warn(f"{bench} drift watch: {drift}",
                              RuntimeWarning)
                print(f"WARNING: {drift}")
            append_ratio_history(history_path, {
                "bench": bench,
                "quick": quick_mode(),
                "speedup": round(measured["ratio"], 4),
                "cases": measured["cases"],
                "unix_time": round(time.time(), 3),
            })

    assert gate["overhead"] <= OVERHEAD_CEILING, (
        f"disabled-tracer instrumentation costs "
        f"{(gate['overhead'] - 1) * 100:.1f}% over the bare evaluator "
        f"loop (ceiling {(OVERHEAD_CEILING - 1) * 100:.0f}%)"
    )
    assert attr_gate["overhead"] <= OVERHEAD_CEILING, (
        f"attribution-off path costs "
        f"{(attr_gate['overhead'] - 1) * 100:.1f}% over the default "
        f"evaluator loop (ceiling {(OVERHEAD_CEILING - 1) * 100:.0f}%)"
    )
    # The registry counters did run (they are the always-on part).
    snapshot = REGISTRY.snapshot()["counters"]
    assert snapshot.get("cases_evaluated", 0) >= gate["cases"]
