"""Fig. 6(c): inference-accuracy impact of thermal noise.

Paper: thermal noise degrades DNN inference accuracy by up to 11% under
the performance-only Floret-3D mapping; the joint design recovers most
of it.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import exp_fig6, format_table


def test_fig6c_accuracy(benchmark):
    rows = run_once(benchmark, exp_fig6)
    table = format_table(
        ["dnn", "model", "floret drop (pp)", "joint drop (pp)"],
        [
            (r.dnn_id, r.model_name, r.floret_accuracy_drop_pct,
             r.joint_accuracy_drop_pct)
            for r in rows
        ],
        title="Fig. 6(c): accuracy degradation from thermal noise",
        float_format="{:.1f}",
    )
    print()
    print(table)
    worst = max(r.floret_accuracy_drop_pct for r in rows)
    print(f"\nworst Floret-3D accuracy drop: {worst:.1f} pp (paper: up to 11%)")
    for r in rows:
        # The joint design never degrades accuracy more than Floret-3D.
        assert r.joint_accuracy_drop_pct <= r.floret_accuracy_drop_pct + 1e-9
    # Double-digit degradation appears somewhere, as the paper reports.
    assert worst > 5.0
