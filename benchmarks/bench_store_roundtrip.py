"""Store round-trip gate: cold sweep populates, warm sweep replays free.

Acceptance gate for the result-store subsystem: a streamed sweep over
at least 100 (topology, workload, parameter) scenarios runs cold into a
:class:`~repro.eval.store.ResultStore`, then a second runner with a
fresh store handle on the same directory must answer **every** case
from disk -- zero evaluations, 100% hits -- and reproduce the cold
run's aggregates bit-for-bit (deterministic emission order + exact JSON
float round-trip make this an equality, not a tolerance).

``REPRO_STORE_DIR`` points the store at a persistent directory (CI
uploads it as the sweep-results artifact); unset, a temp directory is
used.  The grid stays at full size in ``REPRO_SWEEP_QUICK`` mode -- the
16-chiplet vectorized cases are milliseconds each -- so the >= 100-case
guarantee holds in the CI smoke too.
"""

from __future__ import annotations

import os

from _bench_utils import run_once

from repro.eval import (
    ResultStore,
    RunningPivot,
    RunningStats,
    StreamingSweepRunner,
    evaluate_comm_case,
    format_table,
    sweep_grid,
)

ARCHS = ("floret", "siam", "kite", "swap")
PATTERNS = ("uniform", "neighbor", "hotspot", "transpose")
FLIT_OVERRIDES = ((), (("flit_bytes", 16),))


def _grid():
    return sweep_grid(
        archs=ARCHS, sizes=(16,), workloads=PATTERNS,
        seeds=(0, 1, 2, 3), overrides=FLIT_OVERRIDES,
    )


def _store_root(tmp_path_factory):
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return env
    return tmp_path_factory.mktemp("result-store")


def _aggregators():
    return (RunningPivot("energy_pj"), RunningStats("latency_cycles"))


def _roundtrip(root, cases):
    cold_aggs = _aggregators()
    cold = StreamingSweepRunner(
        evaluate_comm_case, workers=4, store=ResultStore(root)
    ).run_stream(cases, cold_aggs)
    assert not cold.failures, cold.failures
    warm_aggs = _aggregators()
    warm = StreamingSweepRunner(
        evaluate_comm_case, workers=4, store=ResultStore(root)
    ).run_stream(cases, warm_aggs)
    assert not warm.failures, warm.failures
    return cold, cold_aggs, warm, warm_aggs


def test_store_roundtrip(benchmark, tmp_path_factory):
    cases = _grid()
    assert len(cases) >= 100
    root = _store_root(tmp_path_factory)
    cold, cold_aggs, warm, warm_aggs = run_once(
        benchmark, _roundtrip, root, cases
    )
    table = format_table(
        ["phase", "cases", "evaluated", "store hits", "elapsed (s)"],
        [
            ("cold", cold.total, cold.evaluated, cold.store_hits,
             cold.elapsed_s),
            ("warm", warm.total, warm.evaluated, warm.store_hits,
             warm.elapsed_s),
        ],
        title=f"Result-store round trip over {len(cases)} scenarios",
    )
    print()
    print(table)

    # Warm replay of a completed sweep performs ZERO evaluations.
    assert warm.store_hits == len(cases)
    assert warm.evaluated == 0
    # A pre-populated REPRO_STORE_DIR legitimately warms the "cold" run
    # (that is the point of a persistent store); only a fresh directory
    # must start fully cold.
    if cold.store_hits == 0:
        assert cold.evaluated == len(cases)

    # Aggregates reproduce exactly -- not approximately.
    cold_pivot, cold_latency = cold_aggs
    warm_pivot, warm_latency = warm_aggs
    assert warm_pivot.table() == cold_pivot.table()
    assert warm_latency.count == cold_latency.count
    assert warm_latency.sum == cold_latency.sum
    assert warm_latency.min == cold_latency.min
    assert warm_latency.max == cold_latency.max
