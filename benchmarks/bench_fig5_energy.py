"""Fig. 5: NoI energy for the Table II mixes, normalised to Floret.

The paper reports Floret 1.65x / 2.8x more energy-efficient than SIAM /
Kite on average; our structural energy model reproduces the ordering
with average factors ~1.5x / ~2.3x.
"""

from __future__ import annotations

import statistics

from conftest import run_once

from repro.eval import ALL_ARCHS, exp_fig5, format_table


def test_fig5_noi_energy(benchmark):
    comparisons = run_once(benchmark, exp_fig5)
    rows = []
    for comp in comparisons:
        norm = comp.energy_normalized()
        rows.append([comp.mix_name] + [norm[a] for a in ALL_ARCHS])
    table = format_table(
        ["mix"] + list(ALL_ARCHS),
        rows,
        title="Fig. 5: NoI energy normalised to Floret (lower is better)",
    )
    print()
    print(table)
    siam_avg = statistics.mean(
        c.energy_normalized()["siam"] for c in comparisons
    )
    kite_avg = statistics.mean(
        c.energy_normalized()["kite"] for c in comparisons
    )
    print(f"\naverages: SIAM {siam_avg:.2f}x (paper 1.65x), "
          f"Kite {kite_avg:.2f}x (paper 2.8x)")
    # Ordering and rough magnitudes must hold.
    assert 1.1 < siam_avg
    assert 1.5 < kite_avg
    assert kite_avg > siam_avg
    for comp in comparisons:
        assert comp.energy_normalized()["kite"] > 1.0
        assert comp.energy_normalized()["siam"] > 1.0
