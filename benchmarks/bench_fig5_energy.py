"""Fig. 5: NoI energy for the Table II mixes, normalised to Floret.

The paper reports Floret 1.65x / 2.8x more energy-efficient than SIAM /
Kite on average; our structural energy model reproduces the ordering
with average factors ~1.5x / ~2.3x.

Ported to the :class:`~repro.eval.sweeps.SweepRunner` fan-out via the
shared ``mix_sweep_normalized`` driver (same sweep shape as
``bench_fig3_latency``; only the aggregated metric differs).
"""

from __future__ import annotations

import statistics

from _bench_utils import mix_sweep_normalized, run_once

from repro.eval import ALL_ARCHS, format_table

MIXES = ("WL1", "WL2", "WL3", "WL4", "WL5")


def _sweep():
    return mix_sweep_normalized("noi_energy_pj", mixes=MIXES)


def test_fig5_noi_energy(benchmark):
    normalized = run_once(benchmark, _sweep)
    table = format_table(
        ["mix"] + list(ALL_ARCHS),
        [[mix] + [normalized[mix][a] for a in ALL_ARCHS] for mix in MIXES],
        title="Fig. 5: NoI energy normalised to Floret (lower is better)",
    )
    print()
    print(table)
    siam_avg = statistics.mean(normalized[mix]["siam"] for mix in MIXES)
    kite_avg = statistics.mean(normalized[mix]["kite"] for mix in MIXES)
    print(f"\naverages: SIAM {siam_avg:.2f}x (paper 1.65x), "
          f"Kite {kite_avg:.2f}x (paper 2.8x)")
    # Ordering and rough magnitudes must hold.
    assert 1.1 < siam_avg
    assert 1.5 < kite_avg
    assert kite_avg > siam_avg
    for mix in MIXES:
        assert normalized[mix]["kite"] > 1.0
        assert normalized[mix]["siam"] > 1.0
