"""Eq. (1) ablation: head/tail placement optimisation and petal count.

The paper's Eq. (1) objective d -- the mean Manhattan distance from each
SFC's tail to every other SFC's head -- is what the Floret construction
minimises.  This bench sweeps the petal count and compares optimised vs
default orientations.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import exp_eq1_headtail, format_table


def test_eq1_headtail_optimization(benchmark):
    rows = run_once(benchmark, exp_eq1_headtail)
    table = format_table(
        ["petals", "optimised d", "default d", "improvement"],
        [
            (r.petals, r.optimized_d, r.unoptimized_d, r.improvement)
            for r in rows
        ],
        title="Eq. (1): mean tail-to-head distance d on a 10x10 grid",
    )
    print()
    print(table)
    for r in rows:
        assert r.optimized_d <= r.unoptimized_d + 1e-9
    # The paper's 6-petal running example benefits substantially.
    six = next(r for r in rows if r.petals == 6)
    assert six.improvement > 1.3
