"""Table I: the 13 DNN inference workloads and their parameter counts.

Regenerates the paper's Table I from the model zoo's exact shape
inference and prints paper-reported vs measured parameter counts.
The CIFAR-10 rows match the paper within ~3%; several ImageNet rows in
the paper's printed table are internally inconsistent (see
EXPERIMENTS.md).

Ported to the :class:`~repro.eval.sweeps.SweepRunner` fan-out: one case
per DNN id through ``evaluate_table1_case``, shape inference running in
parallel worker processes.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import (
    SweepCase,
    SweepRunner,
    evaluate_table1_case,
    format_table,
)
from repro.workloads.zoo import TABLE1_SPEC


def _sweep():
    cases = [
        SweepCase(arch="floret", workload=dnn_id, tag="table1")
        for dnn_id, _, _, _ in TABLE1_SPEC
    ]
    outcome = SweepRunner(
        evaluate_table1_case, workers=4, chunksize=2
    ).run(cases)
    assert not outcome.failures, outcome.failures
    return outcome


def test_table1_workloads(benchmark):
    outcome = run_once(benchmark, _sweep)
    assert len(outcome.ok) == 13
    spec = {row[0]: row for row in TABLE1_SPEC}
    table = format_table(
        ["id", "model", "dataset", "paper (M)", "measured (M)"],
        [
            (
                r.case.workload,
                spec[r.case.workload][1],
                spec[r.case.workload][2],
                r.metrics["paper_params_millions"],
                r.metrics["measured_params_millions"],
            )
            for r in outcome.ok
        ],
        title="Table I: DNN inference workloads",
    )
    print()
    print(table)
    # CIFAR rows must match the paper closely (they are consistent).
    by_id = {r.case.workload: r.metrics for r in outcome.ok}
    for dnn_id in ("DNN9", "DNN10", "DNN11", "DNN12", "DNN13"):
        m = by_id[dnn_id]
        assert (
            abs(m["measured_params_millions"] - m["paper_params_millions"])
            / m["paper_params_millions"]
            < 0.05
        )
