"""Table I: the 13 DNN inference workloads and their parameter counts.

Regenerates the paper's Table I from the model zoo's exact shape
inference and prints paper-reported vs measured parameter counts.
The CIFAR-10 rows match the paper within ~3%; several ImageNet rows in
the paper's printed table are internally inconsistent (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import exp_table1, format_table


def test_table1_workloads(benchmark):
    rows = run_once(benchmark, exp_table1)
    assert len(rows) == 13
    table = format_table(
        ["id", "model", "dataset", "paper (M)", "measured (M)"],
        [
            (r.dnn_id, r.model_name, r.dataset,
             r.paper_params_millions, r.measured_params_millions)
            for r in rows
        ],
        title="Table I: DNN inference workloads",
    )
    print()
    print(table)
    # CIFAR rows must match the paper closely (they are consistent).
    by_id = {r.dnn_id: r for r in rows}
    for dnn_id in ("DNN9", "DNN10", "DNN11", "DNN12", "DNN13"):
        row = by_id[dnn_id]
        assert (
            abs(row.measured_params_millions - row.paper_params_millions)
            / row.paper_params_millions
            < 0.05
        )
