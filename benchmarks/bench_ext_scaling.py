"""Extension: latency/energy scaling with system size.

Paper Section II: "multi-hop NoI architectures ... do not scale with
more chiplets".  The Floret advantage should persist (or grow) as the
chiplet count rises from 36 to 144.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import format_table
from repro.eval.extensions import exp_scaling


def test_ext_scaling(benchmark):
    rows = run_once(benchmark, exp_scaling)
    by_size = {}
    for r in rows:
        by_size.setdefault(r.num_chiplets, {})[r.arch] = r
    table_rows = []
    for size, archs in sorted(by_size.items()):
        base = archs["floret"].packet_latency
        table_rows.append(
            (
                size,
                archs["floret"].packet_latency,
                archs["siam"].packet_latency / base,
                archs["kite"].packet_latency / base,
                archs["siam"].noi_energy_pj / archs["floret"].noi_energy_pj,
                archs["kite"].noi_energy_pj / archs["floret"].noi_energy_pj,
            )
        )
    print()
    print(format_table(
        ["chiplets", "floret pkt lat", "siam lat x", "kite lat x",
         "siam e x", "kite e x"],
        table_rows,
        title="Scaling: WL5 across system sizes (ratios vs Floret)",
    ))
    # Floret keeps winning at every size.
    for size, archs in by_size.items():
        assert (
            archs["siam"].packet_latency
            >= archs["floret"].packet_latency * 0.98
        )
        assert archs["kite"].packet_latency > archs["floret"].packet_latency
        assert archs["kite"].noi_energy_pj > archs["floret"].noi_energy_pj
