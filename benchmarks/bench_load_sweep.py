"""Load-sweep bench: latency vs injection rate + engine speedup gate.

Two acceptance gates for the epoch-synchronous contention engine:

1. **Speedup ratio**: on a majority-contended packet grid (open-loop
   Bernoulli injection near saturation), ``engine="epochs"`` must
   resolve the same packets at least 5x faster than the
   ``engine="events"`` heap oracle -- with bit-identical results.  The
   gate asserts the *ratio* of the two engines on the same host and
   the same packets, not wall-clock, so it is robust to runner
   variance (both engines slow down together on a loaded machine).
2. **Sweep layer**: the latency-vs-injection-rate experiment family
   (``evaluate_load_sweep_case``) rides ``SweepRunner`` with a
   ``ResultStore``, so saturation sweeps cache and resume like every
   other figure bench.  ``REPRO_STORE_DIR`` points the store at a
   persistent directory (CI uploads it with the sweep-results
   artifact).

A third gate covers the new engine tiers (``epochs-par``,
``epochs-jit``): both must reproduce the epoch engine bit-exactly on
every gate case, and the *best* new tier must beat ``epochs`` by at
least 1.5x -- but only when numba is importable.  Without numba the
JIT kernel runs interpreted (orders of magnitude slower -- that is the
supported fallback, not a regression), so the tier ratio is recorded
and printed but the floor stays disarmed; the run doubles as the
no-numba fallback proof.

``REPRO_SWEEP_QUICK=1`` shrinks both grids and relaxes the ratio gates
(2x heap-vs-epochs, 1.2x tier-vs-epochs; small grids amortise less of
the vectorized engine's fixed per-epoch cost).

Every run also appends its measured speedup ratios to
``ratio-history.jsonl`` inside ``REPRO_STORE_DIR`` (uploaded with the
sweep-results artifact) and *warns* -- never fails -- when a ratio
drifts more than 20% below the trailing median: the hard floor catches
cliffs, the history watch catches slow drift.
"""

from __future__ import annotations

import os
import time
import warnings
from pathlib import Path

from _bench_utils import quick_mode, run_once

from repro.eval import (
    ResultStore,
    SweepRunner,
    append_ratio_history,
    evaluate_load_sweep_case,
    format_table,
    load_ratio_history,
    ratio_drift_warning,
    sweep_grid,
)
from repro.eval.experiments import load_sweep_traffic, parse_load_workload
from repro.eval.sweeps import SweepCase, case_topology
from repro.net.grantkernel import NUMBA_AVAILABLE, warmup_kernels
from repro.net.simulator import simulate

NEW_TIERS = ("epochs-par", "epochs-jit")

#: (arch, num_chiplets, workload) cases for the timed speedup gate --
#: large systems near saturation, where virtually every packet shares a
#: link with another ("majority-contended").
GATE_CASES = (
    ("siam", 196, "uniform@0.06"),
    ("siam", 256, "uniform@0.06"),
    ("kite", 256, "uniform@0.05"),
)
GATE_CASES_QUICK = (
    ("siam", 100, "uniform@0.1"),
)

#: The latency-vs-injection-rate figure grid.
SWEEP_ARCHS = ("floret", "siam", "kite", "swap")
SWEEP_RATES = ("uniform@0.02", "uniform@0.05", "uniform@0.08")
SWEEP_RATES_QUICK = ("uniform@0.02", "uniform@0.06")


def _gate_cases():
    return GATE_CASES_QUICK if quick_mode() else GATE_CASES


def _sweep_cases():
    if quick_mode():
        cases = sweep_grid(archs=("siam", "kite"), sizes=(36,),
                           workloads=SWEEP_RATES_QUICK, seeds=(0,))
    else:
        cases = sweep_grid(archs=SWEEP_ARCHS, sizes=(64,),
                           workloads=SWEEP_RATES, seeds=(0,))
    # One attribution-on case (distinct rate so the pivot keeps a clean
    # row): its per-packet/per-link breakdown arrays ride the store's
    # npz payloads and its attr_* counters land in any trace this bench
    # runs under, so CI's merged trace report exercises the
    # attribution section end to end.
    cases += sweep_grid(
        archs=("siam",), sizes=(36,) if quick_mode() else (64,),
        workloads=("uniform@0.07",), seeds=(0,),
        overrides=((("sim_attribution", 1.0),),), tag="attr",
    )
    return cases


def _assert_reports_identical(events, epochs, label):
    assert events.makespan_cycles == epochs.makespan_cycles, label
    assert events.mean_packet_latency == epochs.mean_packet_latency, label
    assert events.max_packet_latency == epochs.max_packet_latency, label
    assert events.packets_delivered == epochs.packets_delivered, label
    assert events.message_completion == epochs.message_completion, label


def _run_gate():
    rows = []
    tier_rows = []
    totals = {"events": 0.0, "epochs": 0.0,
              "epochs-par": 0.0, "epochs-jit": 0.0}
    warmup_kernels()
    for arch, size, workload in _gate_cases():
        case = SweepCase(arch=arch, num_chiplets=size, workload=workload)
        topo = case_topology(case)
        spec = parse_load_workload(workload)
        table = load_sweep_traffic(spec, size, seed=1)
        # Warm the routing tables, queue index and every code path
        # outside the timed region, for every engine alike.
        topo.routing_tables().queue_index()
        for engine in ("events", "epochs") + NEW_TIERS:
            simulate(topo, table[:64], engine=engine)

        timed = {}
        reports = {}
        for engine in ("events", "epochs") + NEW_TIERS:
            t0 = time.perf_counter()
            reports[engine] = simulate(topo, table, engine=engine)
            timed[engine] = time.perf_counter() - t0
            totals[engine] += timed[engine]

        label = f"{arch}/{size}/{workload}"
        events, epochs = reports["events"], reports["epochs"]
        for engine in ("epochs",) + NEW_TIERS:
            _assert_reports_identical(events, reports[engine],
                                      f"{label}:{engine}")
        contended = 1.0 - (
            epochs.batched_packets / epochs.packets_delivered
        )
        assert contended > 0.5, (
            f"{label}: grid not majority-contended ({contended:.2f})"
        )
        rows.append((
            label, events.packets_delivered, f"{contended:.2f}",
            timed["events"], timed["epochs"],
            timed["events"] / max(timed["epochs"], 1e-12),
            epochs.epochs,
        ))
        best = min(timed[t] for t in NEW_TIERS)
        tier_rows.append((
            label, timed["epochs"], timed["epochs-par"],
            timed["epochs-jit"],
            timed["epochs"] / max(best, 1e-12),
        ))
    return rows, tier_rows, totals


def _run():
    gate_rows, tier_rows, totals = _run_gate()
    store_dir = os.environ.get("REPRO_STORE_DIR")
    store = ResultStore(store_dir) if store_dir else None
    runner = SweepRunner(evaluate_load_sweep_case, workers=4, store=store)
    outcome = runner.run(_sweep_cases())
    assert not outcome.failures, outcome.failures
    return gate_rows, tier_rows, totals, outcome


def test_load_sweep(benchmark):
    gate_rows, tier_rows, totals, outcome = run_once(benchmark, _run)
    events_s, epochs_s = totals["events"], totals["epochs"]

    table = format_table(
        ["case", "packets", "contended", "events (s)", "epochs (s)",
         "speedup", "epochs run"],
        gate_rows,
        title="Contended-engine gate: event heap vs epoch-synchronous",
    )
    print()
    print(table)
    print(format_table(
        ["case", "epochs (s)", "par (s)", "jit (s)", "tier speedup"],
        tier_rows,
        title="Engine-tier gate: epochs vs component-parallel / JIT "
              f"(numba {'present' if NUMBA_AVAILABLE else 'absent'})",
    ))
    latency = outcome.pivot("steady_mean_latency")
    throughput = outcome.pivot("steady_throughput")
    archs = tuple(a for a in SWEEP_ARCHS
                  if any(a in cols for cols in latency.values()))
    fig_rows = [
        [workload]
        + [latency[workload].get(a, float("nan")) for a in archs]
        + [throughput[workload].get(a, float("nan")) for a in archs]
        for workload in sorted(latency)
    ]
    print(format_table(
        ["workload"]
        + [f"lat:{a}" for a in archs]
        + [f"thr:{a}" for a in archs],
        fig_rows,
        title="Steady-state latency (cycles) and accepted throughput "
              "(pkt/node/cycle) vs injection rate",
    ))

    speedup = events_s / max(epochs_s, 1e-12)
    floor = 2.0 if quick_mode() else 5.0
    best_tier_s = min(totals[t] for t in NEW_TIERS)
    best_tier = min(NEW_TIERS, key=lambda t: totals[t])
    tier_speedup = epochs_s / max(best_tier_s, 1e-12)
    tier_floor = 1.2 if quick_mode() else 1.5

    store_dir = os.environ.get("REPRO_STORE_DIR")
    if store_dir:
        history_path = Path(store_dir) / "ratio-history.jsonl"
        history = load_ratio_history(history_path)
        for bench, ratio, extra in (
            ("load_sweep", speedup, {}),
            ("load_sweep_tier", tier_speedup,
             {"tier": best_tier, "numba": NUMBA_AVAILABLE}),
        ):
            prior = [
                rec for rec in history
                if rec.get("bench") == bench
                and rec.get("quick") == quick_mode()
                and rec.get("numba", NUMBA_AVAILABLE) == NUMBA_AVAILABLE
            ]
            drift = ratio_drift_warning(prior, ratio, tolerance=0.2)
            if drift is not None:
                warnings.warn(f"{bench} drift watch: {drift}",
                              RuntimeWarning)
                print(f"WARNING: {drift}")
            append_ratio_history(history_path, dict({
                "bench": bench,
                "quick": quick_mode(),
                "speedup": round(ratio, 4),
                "cases": len(gate_rows),
                "unix_time": round(time.time(), 3),
            }, **extra))

    assert speedup >= floor, (
        f"epoch engine only {speedup:.1f}x faster than the event heap "
        f"(floor {floor}x) over {len(gate_rows)} majority-contended cases"
    )
    if NUMBA_AVAILABLE:
        assert tier_speedup >= tier_floor, (
            f"best new tier ({best_tier}) only {tier_speedup:.2f}x "
            f"faster than the epoch engine (floor {tier_floor}x)"
        )
    else:
        print(f"tier gate disarmed (numba absent): best tier {best_tier} "
              f"at {tier_speedup:.2f}x vs epochs, interpreted fallback")
