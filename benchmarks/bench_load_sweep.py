"""Load-sweep bench: latency vs injection rate + engine speedup gate.

Two acceptance gates for the epoch-synchronous contention engine:

1. **Speedup ratio**: on a majority-contended packet grid (open-loop
   Bernoulli injection near saturation), ``engine="epochs"`` must
   resolve the same packets at least 5x faster than the
   ``engine="events"`` heap oracle -- with bit-identical results.  The
   gate asserts the *ratio* of the two engines on the same host and
   the same packets, not wall-clock, so it is robust to runner
   variance (both engines slow down together on a loaded machine).
2. **Sweep layer**: the latency-vs-injection-rate experiment family
   (``evaluate_load_sweep_case``) rides ``SweepRunner`` with a
   ``ResultStore``, so saturation sweeps cache and resume like every
   other figure bench.  ``REPRO_STORE_DIR`` points the store at a
   persistent directory (CI uploads it with the sweep-results
   artifact).

``REPRO_SWEEP_QUICK=1`` shrinks both grids and relaxes the ratio gate
to 2x (small grids amortise less of the vectorized engine's fixed
per-epoch cost).

Every run also appends its measured speedup ratio to
``ratio-history.jsonl`` inside ``REPRO_STORE_DIR`` (uploaded with the
sweep-results artifact) and *warns* -- never fails -- when the ratio
drifts more than 20% below the trailing median: the hard floor catches
cliffs, the history watch catches slow drift.
"""

from __future__ import annotations

import os
import time
import warnings
from pathlib import Path

from _bench_utils import quick_mode, run_once

from repro.eval import (
    ResultStore,
    SweepRunner,
    append_ratio_history,
    evaluate_load_sweep_case,
    format_table,
    load_ratio_history,
    ratio_drift_warning,
    sweep_grid,
)
from repro.eval.experiments import load_sweep_traffic, parse_load_workload
from repro.eval.sweeps import SweepCase, case_topology
from repro.net.simulator import simulate

#: (arch, num_chiplets, workload) cases for the timed speedup gate --
#: large systems near saturation, where virtually every packet shares a
#: link with another ("majority-contended").
GATE_CASES = (
    ("siam", 196, "uniform@0.06"),
    ("siam", 256, "uniform@0.06"),
    ("kite", 256, "uniform@0.05"),
)
GATE_CASES_QUICK = (
    ("siam", 100, "uniform@0.1"),
)

#: The latency-vs-injection-rate figure grid.
SWEEP_ARCHS = ("floret", "siam", "kite", "swap")
SWEEP_RATES = ("uniform@0.02", "uniform@0.05", "uniform@0.08")
SWEEP_RATES_QUICK = ("uniform@0.02", "uniform@0.06")


def _gate_cases():
    return GATE_CASES_QUICK if quick_mode() else GATE_CASES


def _sweep_cases():
    if quick_mode():
        return sweep_grid(archs=("siam", "kite"), sizes=(36,),
                          workloads=SWEEP_RATES_QUICK, seeds=(0,))
    return sweep_grid(archs=SWEEP_ARCHS, sizes=(64,),
                      workloads=SWEEP_RATES, seeds=(0,))


def _assert_reports_identical(events, epochs, label):
    assert events.makespan_cycles == epochs.makespan_cycles, label
    assert events.mean_packet_latency == epochs.mean_packet_latency, label
    assert events.max_packet_latency == epochs.max_packet_latency, label
    assert events.packets_delivered == epochs.packets_delivered, label
    assert events.message_completion == epochs.message_completion, label


def _run_gate():
    rows = []
    total_events_s = 0.0
    total_epochs_s = 0.0
    for arch, size, workload in _gate_cases():
        case = SweepCase(arch=arch, num_chiplets=size, workload=workload)
        topo = case_topology(case)
        spec = parse_load_workload(workload)
        table = load_sweep_traffic(spec, size, seed=1)
        # Warm the routing tables, queue index and every code path
        # outside the timed region, for both engines alike.
        topo.routing_tables().queue_index()
        simulate(topo, table[:64], engine="events")
        simulate(topo, table[:64], engine="epochs")

        t0 = time.perf_counter()
        events = simulate(topo, table, engine="events")
        t1 = time.perf_counter()
        epochs = simulate(topo, table, engine="epochs")
        t2 = time.perf_counter()

        label = f"{arch}/{size}/{workload}"
        _assert_reports_identical(events, epochs, label)
        contended = 1.0 - (
            epochs.batched_packets / epochs.packets_delivered
        )
        assert contended > 0.5, (
            f"{label}: grid not majority-contended ({contended:.2f})"
        )
        events_s = t1 - t0
        epochs_s = t2 - t1
        total_events_s += events_s
        total_epochs_s += epochs_s
        rows.append((
            label, events.packets_delivered, f"{contended:.2f}",
            events_s, epochs_s, events_s / max(epochs_s, 1e-12),
            epochs.epochs,
        ))
    return rows, total_events_s, total_epochs_s


def _run():
    gate_rows, events_s, epochs_s = _run_gate()
    store_dir = os.environ.get("REPRO_STORE_DIR")
    store = ResultStore(store_dir) if store_dir else None
    runner = SweepRunner(evaluate_load_sweep_case, workers=4, store=store)
    outcome = runner.run(_sweep_cases())
    assert not outcome.failures, outcome.failures
    return gate_rows, events_s, epochs_s, outcome


def test_load_sweep(benchmark):
    gate_rows, events_s, epochs_s, outcome = run_once(benchmark, _run)

    table = format_table(
        ["case", "packets", "contended", "events (s)", "epochs (s)",
         "speedup", "epochs run"],
        gate_rows,
        title="Contended-engine gate: event heap vs epoch-synchronous",
    )
    print()
    print(table)
    latency = outcome.pivot("steady_mean_latency")
    throughput = outcome.pivot("steady_throughput")
    archs = tuple(a for a in SWEEP_ARCHS
                  if any(a in cols for cols in latency.values()))
    fig_rows = [
        [workload]
        + [latency[workload].get(a, float("nan")) for a in archs]
        + [throughput[workload].get(a, float("nan")) for a in archs]
        for workload in sorted(latency)
    ]
    print(format_table(
        ["workload"]
        + [f"lat:{a}" for a in archs]
        + [f"thr:{a}" for a in archs],
        fig_rows,
        title="Steady-state latency (cycles) and accepted throughput "
              "(pkt/node/cycle) vs injection rate",
    ))

    speedup = events_s / max(epochs_s, 1e-12)
    floor = 2.0 if quick_mode() else 5.0

    store_dir = os.environ.get("REPRO_STORE_DIR")
    if store_dir:
        history_path = Path(store_dir) / "ratio-history.jsonl"
        prior = [
            rec for rec in load_ratio_history(history_path)
            if rec.get("bench") == "load_sweep"
            and rec.get("quick") == quick_mode()
        ]
        drift = ratio_drift_warning(prior, speedup, tolerance=0.2)
        if drift is not None:
            warnings.warn(f"engine-speedup drift watch: {drift}",
                          RuntimeWarning)
            print(f"WARNING: {drift}")
        append_ratio_history(history_path, {
            "bench": "load_sweep",
            "quick": quick_mode(),
            "speedup": round(speedup, 4),
            "cases": len(gate_rows),
            "unix_time": round(time.time(), 3),
        })

    assert speedup >= floor, (
        f"epoch engine only {speedup:.1f}x faster than the event heap "
        f"(floor {floor}x) over {len(gate_rows)} majority-contended cases"
    )
