"""Fig. 4: design-time-optimised NoIs strand chiplets at runtime.

The paper's Fig. 4 shows SWAP with multiple unmapped (NM) chiplets:
greedy mapping under a contiguity requirement cannot always use the free
chiplets it finds.  We reproduce the effect with a hop-budget admission
rule: baselines reject placements whose consecutive loads exceed the
budget (stalling tasks and stranding free chiplets), while Floret's
contiguous mapper never rejects.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import exp_fig4, format_table


def test_fig4_utilization(benchmark):
    rows = run_once(benchmark, exp_fig4)
    table = format_table(
        ["arch", "hop budget", "utilization", "rejected mappings",
         "relaxed", "makespan (cyc)"],
        [
            (r.arch, r.hop_budget if r.hop_budget is not None else "-",
             r.utilization, r.constraint_failures, r.relaxed_mappings,
             r.makespan_cycles)
            for r in rows
        ],
        title="Fig. 4: runtime resource utilisation under contiguity QoS",
    )
    print()
    print(table)
    by_arch = {r.arch: r for r in rows}
    # Floret never rejects a mapping.
    assert by_arch["floret"].constraint_failures == 0
    # The design-time-optimised baselines hit the contiguity wall.
    assert by_arch["swap"].constraint_failures > 0
    assert (
        by_arch["swap"].constraint_failures
        >= by_arch["siam"].constraint_failures
    )
