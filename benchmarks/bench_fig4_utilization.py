"""Fig. 4: design-time-optimised NoIs strand chiplets at runtime.

The paper's Fig. 4 shows SWAP with multiple unmapped (NM) chiplets:
greedy mapping under a contiguity requirement cannot always use the free
chiplets it finds.  We reproduce the effect with a hop-budget admission
rule: baselines reject placements whose consecutive loads exceed the
budget (stalling tasks and stranding free chiplets), while Floret's
contiguous mapper never rejects.

Ported to the :class:`~repro.eval.sweeps.SweepRunner` fan-out: one case
per architecture through ``evaluate_utilization_case``, each worker
scheduling its architecture in parallel (and through the result store
when one is attached).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.eval import (
    ALL_ARCHS,
    SweepCase,
    SweepRunner,
    evaluate_utilization_case,
    format_table,
)


def _sweep():
    cases = [
        SweepCase(arch=arch, num_chiplets=100, workload="WL3", tag="fig4")
        for arch in ALL_ARCHS
    ]
    outcome = SweepRunner(
        evaluate_utilization_case, workers=len(cases), chunksize=1
    ).run(cases)
    assert not outcome.failures, outcome.failures
    return outcome


def test_fig4_utilization(benchmark):
    outcome = run_once(benchmark, _sweep)
    table = format_table(
        ["arch", "hop budget", "utilization", "rejected mappings",
         "relaxed", "makespan (cyc)"],
        [
            (
                r.case.arch,
                int(r.metrics["hop_budget"])
                if r.metrics["hop_budget"] >= 0 else "-",
                r.metrics["utilization"],
                int(r.metrics["constraint_failures"]),
                int(r.metrics["relaxed_mappings"]),
                int(r.metrics["makespan_cycles"]),
            )
            for r in outcome.ok
        ],
        title="Fig. 4: runtime resource utilisation under contiguity QoS",
    )
    print()
    print(table)
    by_arch = {r.case.arch: r.metrics for r in outcome.ok}
    # Floret never rejects a mapping.
    assert by_arch["floret"]["constraint_failures"] == 0
    # The design-time-optimised baselines hit the contiguity wall.
    assert by_arch["swap"]["constraint_failures"] > 0
    assert (
        by_arch["swap"]["constraint_failures"]
        >= by_arch["siam"]["constraint_failures"]
    )
